"""Tests for simulation statistics and tracing."""

import pytest

from repro.sim.stats import Counter, Histogram, StatsRegistry
from repro.sim.trace import TraceEvent, Tracer


class TestCounter:
    def test_accumulates(self):
        counter = Counter("hits")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_reset(self):
        counter = Counter("x")
        counter.add(3)
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_statistics(self):
        histogram = Histogram("lat")
        for sample in (4, 10, 1):
            histogram.record(sample)
        assert histogram.count == 3
        assert histogram.total == 15
        assert histogram.minimum == 1
        assert histogram.maximum == 10
        assert histogram.mean == 5.0

    def test_empty_mean_is_zero(self):
        assert Histogram("x").mean == 0.0

    def test_bucket_boundaries(self):
        # bucket 0 holds <= 0; bucket i holds 2**(i-1) <= s < 2**i
        histogram = Histogram("b")
        for sample in (0, 1, 2, 3, 4, 7, 8):
            histogram.record(sample)
        assert histogram.buckets == [1, 1, 2, 2, 1]
        assert Histogram.bucket_bounds(0) == (0, 0)
        assert Histogram.bucket_bounds(1) == (1, 1)
        assert Histogram.bucket_bounds(3) == (4, 7)
        assert Histogram.bucket_bounds(4) == (8, 15)

    def test_bucket_edges_land_in_correct_bucket(self):
        for index in range(1, 12):
            low, high = Histogram.bucket_bounds(index)
            histogram = Histogram("e")
            histogram.record(low)
            histogram.record(high)
            assert histogram.buckets[index] == 2, f"bucket {index}"

    def test_percentile_extremes_are_exact(self):
        histogram = Histogram("p")
        for sample in (3, 100, 17, 9, 250):
            histogram.record(sample)
        assert histogram.percentile(0) == 3.0
        assert histogram.percentile(100) == 250.0

    def test_percentile_single_sample(self):
        histogram = Histogram("s")
        histogram.record(42)
        for p in (0, 50, 99, 100):
            assert histogram.percentile(p) == 42.0

    def test_percentile_within_one_bucket(self):
        # all percentile estimates must stay inside the observed range
        histogram = Histogram("r")
        samples = [5, 6, 90, 100, 120, 1000]
        for sample in samples:
            histogram.record(sample)
        for p in (10, 25, 50, 75, 90, 99):
            value = histogram.percentile(p)
            assert min(samples) <= value <= max(samples)

    def test_percentile_monotone_in_p(self):
        histogram = Histogram("m")
        for sample in (1, 2, 4, 8, 16, 32, 64, 128):
            histogram.record(sample)
        estimates = [histogram.percentile(p) for p in range(0, 101, 5)]
        assert estimates == sorted(estimates)

    def test_percentile_empty_and_bad_p(self):
        histogram = Histogram("x")
        assert histogram.percentile(50) == 0.0
        with pytest.raises(ValueError):
            histogram.percentile(101)
        with pytest.raises(ValueError):
            histogram.percentile(-1)

    def test_reset_clears_buckets(self):
        histogram = Histogram("x")
        histogram.record(9)
        histogram.reset()
        assert histogram.buckets == []
        assert histogram.percentile(50) == 0.0


class TestStatsRegistry:
    def test_counter_identity(self):
        registry = StatsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_value_of_untouched_counter(self):
        assert StatsRegistry().value("never") == 0

    def test_counters_snapshot_sorted(self):
        registry = StatsRegistry()
        registry.counter("z").add(1)
        registry.counter("a").add(2)
        assert list(registry.counters()) == ["a", "z"]

    def test_reset_all(self):
        registry = StatsRegistry()
        registry.counter("a").add(5)
        registry.histogram("h").record(3)
        registry.reset()
        assert registry.value("a") == 0
        assert registry.histogram("h").count == 0


class TestTracer:
    def test_log_and_filter(self):
        tracer = Tracer()
        tracer.log(1, "host", "read", addr=0x10)
        tracer.log(2, "host", "write", addr=0x20)
        tracer.log(3, "dma", "read", addr=0x30)
        assert len(tracer.filter(source="host")) == 2
        assert len(tracer.filter(kind="read")) == 2
        assert len(tracer.filter(source="dma", kind="read")) == 1

    def test_first_and_last(self):
        tracer = Tracer()
        tracer.log(1, "a", "evt", n=1)
        tracer.log(5, "a", "evt", n=2)
        assert tracer.first("evt").details["n"] == 1
        assert tracer.last("evt").details["n"] == 2
        assert tracer.first("missing") is None

    def test_disabled_tracer_drops(self):
        tracer = Tracer(enabled=False)
        tracer.log(1, "a", "evt")
        assert tracer.events == []

    def test_capacity_cap(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.log(i, "a", "evt")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_unbounded_tracer_never_drops(self):
        tracer = Tracer()
        for i in range(100):
            tracer.log(i, "a", "evt")
        assert tracer.dropped == 0

    def test_dump_notes_drops(self):
        tracer = Tracer(capacity=1)
        tracer.log(0, "a", "kept")
        tracer.log(1, "a", "lost")
        tracer.log(2, "a", "lost")
        text = tracer.dump()
        assert "2 event(s) dropped at capacity 1" in text
        assert "kept" in text

    def test_dump_silent_when_nothing_dropped(self):
        tracer = Tracer(capacity=5)
        tracer.log(0, "a", "evt")
        assert "dropped" not in tracer.dump()

    def test_clear_resets_dropped(self):
        tracer = Tracer(capacity=1)
        tracer.log(0, "a", "evt")
        tracer.log(1, "a", "evt")
        tracer.clear()
        assert tracer.dropped == 0
        assert tracer.events == []

    def test_dump_renders_lines(self):
        tracer = Tracer()
        tracer.log(7, "llc", "hit", addr=4)
        text = tracer.dump()
        assert "llc" in text and "hit" in text

    def test_event_is_frozen(self):
        event = TraceEvent(1, "a", "b")
        with pytest.raises(AttributeError):
            event.cycle = 2
