"""Tests for simulation statistics and tracing."""

import pytest

from repro.sim.stats import Counter, Histogram, StatsRegistry
from repro.sim.trace import TraceEvent, Tracer


class TestCounter:
    def test_accumulates(self):
        counter = Counter("hits")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_reset(self):
        counter = Counter("x")
        counter.add(3)
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_statistics(self):
        histogram = Histogram("lat")
        for sample in (4, 10, 1):
            histogram.record(sample)
        assert histogram.count == 3
        assert histogram.total == 15
        assert histogram.minimum == 1
        assert histogram.maximum == 10
        assert histogram.mean == 5.0

    def test_empty_mean_is_zero(self):
        assert Histogram("x").mean == 0.0


class TestStatsRegistry:
    def test_counter_identity(self):
        registry = StatsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_value_of_untouched_counter(self):
        assert StatsRegistry().value("never") == 0

    def test_counters_snapshot_sorted(self):
        registry = StatsRegistry()
        registry.counter("z").add(1)
        registry.counter("a").add(2)
        assert list(registry.counters()) == ["a", "z"]

    def test_reset_all(self):
        registry = StatsRegistry()
        registry.counter("a").add(5)
        registry.histogram("h").record(3)
        registry.reset()
        assert registry.value("a") == 0
        assert registry.histogram("h").count == 0


class TestTracer:
    def test_log_and_filter(self):
        tracer = Tracer()
        tracer.log(1, "host", "read", addr=0x10)
        tracer.log(2, "host", "write", addr=0x20)
        tracer.log(3, "dma", "read", addr=0x30)
        assert len(tracer.filter(source="host")) == 2
        assert len(tracer.filter(kind="read")) == 2
        assert len(tracer.filter(source="dma", kind="read")) == 1

    def test_first_and_last(self):
        tracer = Tracer()
        tracer.log(1, "a", "evt", n=1)
        tracer.log(5, "a", "evt", n=2)
        assert tracer.first("evt").details["n"] == 1
        assert tracer.last("evt").details["n"] == 2
        assert tracer.first("missing") is None

    def test_disabled_tracer_drops(self):
        tracer = Tracer(enabled=False)
        tracer.log(1, "a", "evt")
        assert tracer.events == []

    def test_capacity_cap(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.log(i, "a", "evt")
        assert len(tracer.events) == 2

    def test_dump_renders_lines(self):
        tracer = Tracer()
        tracer.log(7, "llc", "hit", addr=4)
        text = tracer.dump()
        assert "llc" in text and "hit" in text

    def test_event_is_frozen(self):
        event = TraceEvent(1, "a", "b")
        with pytest.raises(AttributeError):
            event.cycle = 2
