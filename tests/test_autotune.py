"""Schedules-as-data: recipes, fuzzed equivalence, the tuner, serving swaps.

The tentpole invariant under test: a schedule is a value.  Recipes
round-trip through JSON, apply onto any library algorithm, enumerate
their legal continuations soundly, and — the semantic core — **every
legal recipe computes exactly what the unscheduled algorithm computes**,
checked bit-for-bit against the :func:`reference_output` interpreter on
seeded random operands.  On top of that sit the tuner (budgeted beam
search whose winner can never lose to the stock recipe), the
JSON-persistable schedule cache, and the serving integration (hot-key
retuning, pool-wide recipe swaps, measured-cycle SJF estimates).
"""

import json

import numpy as np
import pytest

from repro.compiler import (
    ALGORITHMS,
    DEFAULT_FUNC5,
    DEFAULT_RECIPES,
    FUNC5_CGEMM,
    NAME_BY_FUNC5,
    Recipe,
    Schedule,
    ScheduleCache,
    ScheduleError,
    TunedSchedule,
    Tuner,
    algorithm,
    config_fingerprint,
    default_recipe,
    geometry_key,
    infer_out_shape,
    offload_compiled,
    recompile,
    reference_output,
)
from repro.compiler.ir import CompilerError
from repro.compiler.tune import TUNE_SLOT
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem
from repro.serve.dispatch import AdmissionPolicy, estimate_service_cycles
from repro.serve.engine import AutotunePolicy, ServingEngine
from repro.serve.request import kernel_request

SMALL = ArcaneConfig(n_vpus=4, lanes=4, line_bytes=256, vpu_kib=8,
                     main_memory_kib=512)


# ---------------------------------------------------------------------------
# operand generators (one per library algorithm)
# ---------------------------------------------------------------------------


def _sources_for(name: str, rng: np.random.Generator):
    """Random small sources + params for one library kernel."""
    lo, hi = -6, 6
    if name == "cgemm":
        m, k, n = rng.integers(1, 5), rng.integers(2, 25), rng.integers(4, 17)
        return (
            [rng.integers(lo, hi, (m, k)).astype(np.int16),
             rng.integers(lo, hi, (k, n)).astype(np.int16),
             rng.integers(lo, hi, (m, n)).astype(np.int16)],
            [int(rng.integers(-3, 4)), int(rng.integers(-3, 4))],
        )
    if name == "dwconv2d":
        c, kk = int(rng.integers(1, 3)), 3
        h, w = int(rng.integers(kk + 1, 9)), int(rng.integers(kk + 2, 13))
        return (
            [rng.integers(lo, hi, (c * h, w)).astype(np.int16),
             rng.integers(-3, 3, (c * kk, kk)).astype(np.int16)],
            [],
        )
    if name == "fc":
        k, n = int(rng.integers(2, 33)), int(rng.integers(4, 17))
        return (
            [rng.integers(lo, hi, (1, k)).astype(np.int16),
             rng.integers(lo, hi, (k, n)).astype(np.int16),
             rng.integers(lo, hi, (1, n)).astype(np.int16)],
            [],
        )
    if name in ("ewise_add", "ewise_mul"):
        m, n = int(rng.integers(1, 7)), int(rng.integers(4, 33))
        return (
            [rng.integers(lo, hi, (m, n)).astype(np.int16),
             rng.integers(lo, hi, (m, n)).astype(np.int16)],
            [],
        )
    assert name == "rowsum"
    m, n = int(rng.integers(1, 7)), int(rng.integers(4, 33))
    return [rng.integers(lo, hi, (m, n)).astype(np.int16)], []


def _reference(name: str, sources, params):
    program = algorithm(name)
    out_shape = infer_out_shape(program, [s.shape for s in sources])
    operands = {program.dest.name: np.zeros(out_shape, dtype=sources[0].dtype)}
    for op, src in zip(program.sources, sources):
        operands[op.name] = src
    env = dict(zip(program.params, (int(p) for p in params)))
    return reference_output(program, operands, params=env)


def _run_recipe(system, name, recipe, sources, params):
    """Compile ``name`` under ``recipe`` into the tune slot and run it."""
    spec = recompile(name, recipe, func5=TUNE_SLOT)
    system.reset_heap()
    system.llc.runtime.library.register(spec, replace=True)
    handles = [system.place_matrix(s) for s in sources]
    out_shape = infer_out_shape(algorithm(name), [s.shape for s in sources])
    out = system.alloc_matrix(out_shape, sources[0].dtype)
    with system.program() as prog:
        for register, handle in enumerate(handles):
            prog.xmr(register, handle)
        prog.xmr(len(handles), out)
        offload_compiled(prog, TUNE_SLOT, out.etype.suffix, dest=len(handles),
                         sources=list(range(len(handles))), params=list(params))
    return system.read_matrix(out), system.last_report.total_cycles


def _random_walk(name: str, rng: np.random.Generator, config=SMALL):
    """A seeded random legal recipe: walk legal_moves, ensure vectorized."""
    schedule = Schedule(algorithm(name))
    while True:
        moves = schedule.legal_moves(config=config)
        if not moves or rng.random() < 0.25:
            break
        schedule.apply([moves[int(rng.integers(len(moves)))]])
    if schedule.program.vector_var is None:
        vec = [m for m in schedule.legal_moves(config=config) if m[0] == "vectorize"]
        if not vec:
            return None  # cannot lower; resample
        schedule.apply([vec[0]])
    return schedule.recipe


# ---------------------------------------------------------------------------
# recipe IR
# ---------------------------------------------------------------------------


class TestRecipe:
    def test_json_round_trip(self):
        recipe = Recipe([("shard", "i"), ("strip_mine", "k", 4), ("vectorize", "j")])
        again = Recipe.from_json(recipe.to_json())
        assert again == recipe
        assert list(again) == [("shard", "i"), ("strip_mine", "k", 4),
                               ("vectorize", "j")]

    def test_defaults_round_trip(self):
        for name, recipe in DEFAULT_RECIPES.items():
            assert Recipe.from_json(recipe.to_json()) == recipe, name

    def test_coerce_forms(self):
        steps = [("shard", "i"), ("vectorize", "j")]
        recipe = Recipe(steps)
        assert Recipe.coerce(None) == Recipe()
        assert Recipe.coerce(recipe) is recipe
        assert Recipe.coerce(steps) == recipe
        assert Recipe.coerce(recipe.to_json()) == recipe

    def test_describe(self):
        assert Recipe().describe() == "(unscheduled)"
        text = Recipe([("strip_mine", "k", 4)]).describe()
        assert text == "strip_mine(k, 4)"

    def test_bad_steps_rejected(self):
        with pytest.raises(ScheduleError, match="unknown recipe op"):
            Recipe([("fuse", "i")])
        with pytest.raises(ScheduleError):
            Recipe([("shard",)])
        with pytest.raises(ScheduleError):
            Recipe([("shard", "i", 2)])  # shard takes no argument
        with pytest.raises(ScheduleError):
            Recipe([("strip_mine", "k", 0)])  # size must be positive
        with pytest.raises(ScheduleError, match="does not parse"):
            Recipe.from_json("{nope")

    def test_immutable(self):
        recipe = Recipe([("shard", "i")])
        with pytest.raises(AttributeError):
            recipe.steps = ()

    def test_apply_matches_fluent_chain(self):
        fluent = (Schedule(algorithm("cgemm"))
                  .shard("i").strip_mine("k").vectorize("j"))
        applied = Schedule(algorithm("cgemm")).apply(default_recipe("cgemm"))
        assert applied.recipe == fluent.recipe == default_recipe("cgemm")

    def test_schedule_records_applied_steps(self):
        schedule = Schedule(algorithm("cgemm")).shard("i").strip_mine("k", 4)
        assert schedule.recipe == Recipe([("shard", "i"), ("strip_mine", "k", 4)])


# ---------------------------------------------------------------------------
# ScheduleError names the variable and the alternatives (satellite 1)
# ---------------------------------------------------------------------------


class TestScheduleErrors:
    @pytest.mark.parametrize("transform", ["shard", "strip_mine", "unroll",
                                           "vectorize"])
    def test_unknown_var_names_available_vars(self, transform):
        schedule = Schedule(algorithm("cgemm"))
        with pytest.raises(ScheduleError) as excinfo:
            getattr(schedule, transform)("zz")
        message = str(excinfo.value)
        assert "'zz'" in message
        for var in ("'i'", "'j'", "'k'"):
            assert var in message, message

    def test_every_algorithm_reports_its_own_vars(self):
        for name in ALGORITHMS:
            program = algorithm(name)
            with pytest.raises(ScheduleError) as excinfo:
                Schedule(program).shard("nosuchvar")
            message = str(excinfo.value)
            for var in program.loop_vars():
                assert f"'{var}'" in message, (name, message)


# ---------------------------------------------------------------------------
# legal_moves soundness + recipe fuzz equivalence (satellite 3)
# ---------------------------------------------------------------------------


class TestLegalMoves:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_every_move_applies(self, name):
        rng = np.random.default_rng(11)
        for _ in range(4):
            schedule = Schedule(algorithm(name))
            # wander to a random schedule state, checking soundness there too
            for _ in range(int(rng.integers(0, 3))):
                moves = schedule.legal_moves(config=SMALL)
                if not moves:
                    break
                schedule.apply([moves[int(rng.integers(len(moves)))]])
            for move in schedule.legal_moves(config=SMALL):
                trial = Schedule(algorithm(name)).apply(schedule.recipe)
                trial.apply([move])  # must not raise

    def test_no_double_shard_or_vectorize(self):
        schedule = Schedule(algorithm("cgemm")).shard("i").vectorize("j")
        moves = schedule.legal_moves(config=SMALL)
        assert not any(op == "shard" for op, *_ in moves)
        assert not any(op == "vectorize" for op, *_ in moves)

    def test_strip_caps_respect_config(self):
        moves = Schedule(algorithm("cgemm")).legal_moves(config=SMALL)
        caps = [step[2] for step in moves if step[0] == "strip_mine" and len(step) == 3]
        assert caps and all(1 <= cap < SMALL.vregs_per_vpu for cap in caps)


class TestRecipeFuzz:
    """Seeded random legal recipes are bit-exact vs the unscheduled reference."""

    @pytest.fixture(scope="class")
    def shared(self):
        # mutable holder: a RuntimeError mid-run can leave the simulated
        # system wedged, so tests swap in a fresh one on that path
        return {"system": ArcaneSystem(SMALL)}

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_fuzzed_recipes_match_reference(self, name, shared):
        # hash() is randomized per process; seed from the kernel's index
        rng = np.random.default_rng(101 + sorted(ALGORITHMS).index(name))
        executed = 0
        for round_index in range(6):
            recipe = _random_walk(name, rng)
            if recipe is None:
                continue
            sources, params = _sources_for(name, rng)
            expected = _reference(name, sources, params)
            try:
                got, _ = _run_recipe(
                    shared["system"], name, recipe, sources, params
                )
            except CompilerError:
                continue  # unlowerable for this geometry: legal to reject
            except RuntimeError:
                # over-VRF at claim time: legal to reject, but the system
                # may be mid-run — replace it
                shared["system"] = ArcaneSystem(SMALL)
                continue
            assert np.array_equal(got, expected), (
                f"{name} under {recipe.describe()} diverged from the "
                f"unscheduled reference (round {round_index})"
            )
            executed += 1
        assert executed >= 2, f"fuzz executed only {executed} {name} recipes"

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_default_recipe_matches_reference(self, name, shared):
        rng = np.random.default_rng(5)
        sources, params = _sources_for(name, rng)
        expected = _reference(name, sources, params)
        got, _ = _run_recipe(
            shared["system"], name, default_recipe(name), sources, params
        )
        assert np.array_equal(got, expected)

    def test_fuzzed_recipes_round_trip_json(self):
        rng = np.random.default_rng(23)
        for name in sorted(ALGORITHMS):
            for _ in range(3):
                recipe = _random_walk(name, rng)
                if recipe is None:
                    continue
                assert Recipe.from_json(recipe.to_json()) == recipe


# ---------------------------------------------------------------------------
# recompile into user slots
# ---------------------------------------------------------------------------


class TestRecompile:
    def test_variant_into_user_slot_runs(self):
        rng = np.random.default_rng(2)
        sources, params = _sources_for("cgemm", rng)
        system = ArcaneSystem(SMALL)
        spec = recompile("cgemm", [("strip_mine", "k"), ("vectorize", "j")],
                         func5=9)
        assert spec.func5 == 9
        system.llc.runtime.library.register(spec)
        handles = [system.place_matrix(s) for s in sources]
        out = system.alloc_matrix(
            (sources[0].shape[0], sources[1].shape[1]), np.int16
        )
        with system.program() as prog:
            for register, handle in enumerate(handles):
                prog.xmr(register, handle)
            prog.xmr(len(handles), out)
            offload_compiled(prog, 9, out.etype.suffix, dest=len(handles),
                             sources=[0, 1, 2], params=params)
        assert np.array_equal(
            system.read_matrix(out), _reference("cgemm", sources, params)
        )

    def test_default_recipe_is_stock_spec(self):
        for name, slot in DEFAULT_FUNC5.items():
            spec = recompile(name)
            assert spec.func5 == slot and spec.name == name

    def test_unknown_kernel_named(self):
        with pytest.raises(ValueError, match="nope"):
            recompile("nope")


# ---------------------------------------------------------------------------
# tuner + schedule cache
# ---------------------------------------------------------------------------


class TestTuner:
    def test_tuned_never_loses_to_default(self):
        rng = np.random.default_rng(7)
        tuner = Tuner(SMALL, budget=10, beam_width=2)
        for name in ("cgemm", "rowsum"):
            sources, params = _sources_for(name, rng)
            result = tuner.tune(name, sources, params=params)
            assert result.best_cycles <= result.default_cycles
            assert result.evaluated <= tuner.budget

    def test_budget_respected(self):
        rng = np.random.default_rng(7)
        sources, params = _sources_for("cgemm", rng)
        tuner = Tuner(SMALL, budget=2)
        result = tuner.tune("cgemm", sources, params=params)
        assert result.evaluated <= 2

    def test_cache_hit_on_second_call(self):
        rng = np.random.default_rng(7)
        sources, params = _sources_for("cgemm", rng)
        tuner = Tuner(SMALL, budget=6)
        first = tuner.tune("cgemm", sources, params=params)
        assert not first.from_cache
        second = tuner.tune("cgemm", sources, params=params)
        assert second.from_cache
        assert second.best_cycles == first.best_cycles
        assert second.best_recipe == first.best_recipe

    def test_cache_json_round_trip(self, tmp_path):
        cache = ScheduleCache()
        entry = TunedSchedule(
            recipe=Recipe([("vectorize", "j")]), cycles=100,
            default_cycles=120, evaluated=4,
        )
        cache.put("cgemm", "1x2+2x3+1x3:int16", SMALL, entry)
        path = tmp_path / "schedules.json"
        cache.save(path)
        loaded = ScheduleCache.load(path)
        assert loaded.measured_cycles("cgemm", "1x2+2x3+1x3:int16", SMALL) == 100
        again = loaded.get("cgemm", "1x2+2x3+1x3:int16", SMALL)
        assert again.recipe == entry.recipe
        assert again.speedup == pytest.approx(1.2)

    def test_config_fingerprint_separates_machines(self):
        other = ArcaneConfig(n_vpus=8, lanes=4, line_bytes=256, vpu_kib=8,
                             main_memory_kib=512)
        assert config_fingerprint(SMALL) != config_fingerprint(other)
        cache = ScheduleCache()
        entry = TunedSchedule(Recipe([("vectorize", "j")]), 1, 1, 1)
        cache.put("cgemm", "g", SMALL, entry)
        assert cache.get("cgemm", "g", other) is None
        assert cache.stats()["misses"] == 1

    def test_geometry_key_is_canonical(self):
        key = geometry_key([(8, 16), (16, 24)], np.int16, [2, -1])
        assert key == "8x16+16x24:int16|2,-1"
        assert geometry_key([(8, 16)], np.int8) == "8x16:int8"


# ---------------------------------------------------------------------------
# serving integration: estimates, swaps, hot-key retuning
# ---------------------------------------------------------------------------


def _gemm_kernel_request(request_id, rng, m=4, k=12, n=8):
    a = rng.integers(-6, 6, (m, k)).astype(np.int16)
    b = rng.integers(-6, 6, (k, n)).astype(np.int16)
    c = rng.integers(-6, 6, (m, n)).astype(np.int16)
    return kernel_request(request_id, FUNC5_CGEMM, [a, b, c], (m, n),
                          params=[2, -1], dtype=np.int16)


class TestServingEstimates:
    def test_estimate_prefers_measured_cycles(self):
        rng = np.random.default_rng(1)
        request = _gemm_kernel_request(0, rng)
        heuristic = estimate_service_cycles(request)
        cache = ScheduleCache()
        geometry = geometry_key(
            [m.shape for m in request.payload["inputs"]], np.int16, [2, -1]
        )
        cache.put(
            NAME_BY_FUNC5[FUNC5_CGEMM], geometry, SMALL,
            TunedSchedule(Recipe([("vectorize", "j")]), 777, 900, 3),
        )
        assert estimate_service_cycles(request, cache, SMALL) == 777
        assert estimate_service_cycles(request, cache, SMALL) != heuristic

    def test_estimate_falls_back_without_entry(self):
        rng = np.random.default_rng(1)
        request = _gemm_kernel_request(0, rng)
        cache = ScheduleCache()
        assert estimate_service_cycles(request, cache, SMALL) == \
            estimate_service_cycles(request)

    def test_sjf_rank_uses_cache(self):
        rng = np.random.default_rng(1)
        request = _gemm_kernel_request(0, rng)
        cache = ScheduleCache()
        geometry = geometry_key(
            [m.shape for m in request.payload["inputs"]], np.int16, [2, -1]
        )
        cache.put("cgemm", geometry, SMALL,
                  TunedSchedule(Recipe([("vectorize", "j")]), 555, 900, 3))
        policy = AdmissionPolicy("sjf", schedule_cache=cache, config=SMALL)
        assert policy.rank(request) == (555,)


class TestServingSwap:
    def test_register_recipe_swaps_pool_and_stays_bit_exact(self):
        rng = np.random.default_rng(4)
        engine = ServingEngine(pool_size=2, config=SMALL)
        requests = [_gemm_kernel_request(i, rng) for i in range(3)]
        baseline = engine.serve(requests, verify=True)
        outputs = [r.output.copy() for r in baseline.results]
        library = engine.workers[0].system.llc.runtime.library
        generation = library.generation
        variant = Recipe([("strip_mine", "k"), ("vectorize", "j")])
        engine._get_backend().register_recipe("cgemm", variant.to_json())
        assert library.generation > generation  # stale replay invalidated
        spec = library.lookup(FUNC5_CGEMM)
        assert "strip_mine(k)" in spec.description
        swapped = engine.serve(requests, verify=True)
        for before, after in zip(outputs, swapped.results):
            assert np.array_equal(before, after.output)
        engine.close()

    def test_override_survives_rebuild(self):
        engine = ServingEngine(pool_size=1, config=SMALL)
        worker = engine.workers[0]
        variant = Recipe([("strip_mine", "k"), ("vectorize", "j")])
        worker.register_recipe("cgemm", variant.to_json())
        worker.rebuild()
        spec = worker.system.llc.runtime.library.lookup(FUNC5_CGEMM)
        assert "strip_mine(k)" in spec.description
        engine.close()

    @pytest.mark.dispatch
    def test_register_recipe_broadcasts_to_process_shards(self):
        rng = np.random.default_rng(4)
        engine = ServingEngine(pool_size=2, processes=2, config=SMALL)
        try:
            requests = [_gemm_kernel_request(i, rng) for i in range(4)]
            baseline = engine.serve(requests, verify=True)
            outputs = [r.output.copy() for r in baseline.results]
            variant = Recipe([("strip_mine", "k"), ("vectorize", "j")])
            engine._get_backend().register_recipe("cgemm", variant.to_json())
            swapped = engine.serve(requests, verify=True)
            for before, after in zip(outputs, swapped.results):
                assert np.array_equal(before, after.output)
        finally:
            engine.close()


class TestServingAutotune:
    def test_threshold_gates_retuning(self):
        rng = np.random.default_rng(9)
        engine = ServingEngine(
            pool_size=1, config=SMALL,
            autotune=AutotunePolicy(threshold=4, budget=4),
        )
        below = [_gemm_kernel_request(i, rng) for i in range(3)]
        report = engine.serve(below, verify=True)
        section = report.as_dict()["autotune"]
        assert section["tuned"] == []
        assert sum(section["hot_keys"].values()) == 3
        one_more = [_gemm_kernel_request(3, rng)]
        report = engine.serve(one_more, verify=True)
        section = report.as_dict()["autotune"]
        assert len(section["tuned"]) == 1
        record = section["tuned"][0]
        assert record["kernel"] == "cgemm"
        assert record["best_cycles"] <= record["default_cycles"]
        assert "swapped" in record
        engine.close()

    def test_coerce_forms(self):
        assert AutotunePolicy.coerce(None) is None
        assert AutotunePolicy.coerce(False) is None
        assert AutotunePolicy.coerce(True) == AutotunePolicy()
        assert AutotunePolicy.coerce(5).threshold == 5
        with pytest.raises(ValueError):
            AutotunePolicy.coerce("always")

    def test_preseeded_winner_swaps_and_verifies(self):
        """A cached winner that differs from stock triggers the full swap
        path — re-register in every worker — and outputs stay bit-exact."""
        rng = np.random.default_rng(9)
        engine = ServingEngine(
            pool_size=2, config=SMALL,
            autotune=AutotunePolicy(threshold=1, budget=4),
        )
        probe = _gemm_kernel_request(0, rng)
        geometry = geometry_key(
            [m.shape for m in probe.payload["inputs"]], np.int16, [2, -1]
        )
        variant = Recipe([("strip_mine", "k"), ("vectorize", "j")])
        engine.schedule_cache.put(
            "cgemm", geometry, SMALL,
            TunedSchedule(variant, cycles=100, default_cycles=120, evaluated=4),
        )
        report = engine.serve([probe], verify=True)
        section = report.as_dict()["autotune"]
        assert section["tuned"][0]["swapped"] is True
        spec = engine.workers[0].system.llc.runtime.library.lookup(FUNC5_CGEMM)
        assert "strip_mine(k)" in spec.description
        engine.close()

    def test_autotune_section_absent_when_off(self):
        rng = np.random.default_rng(9)
        engine = ServingEngine(pool_size=1, config=SMALL)
        report = engine.serve([_gemm_kernel_request(0, rng)])
        assert "autotune" not in report.as_dict()
        engine.close()
