"""Smoke tests: every shipped example runs to completion and verifies."""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/cnn_inference.py",
    "examples/custom_kernel.py",
    "examples/compiled_kernel.py",
    "examples/autotune.py",
    "examples/cache_behavior.py",
    "examples/ecpu_firmware.py",
    "examples/serving.py",
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it verified


def test_design_space_example(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/design_space.py", "16"])
    runpy.run_path("examples/design_space.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "design space" in out
    assert "speedup" in out
