"""Observability tests: spans, rolling metrics, trace export, determinism.

The two load-bearing guarantees:

* **zero perturbation** — an ``observe=True`` run produces bit-identical
  outputs, cycle counts and timelines to an ``observe=False`` run (the
  layer is host-side bookkeeping only);
* **determinism** — same seeds export byte-identical trace JSON.
"""

import json

import numpy as np
import pytest

from repro.core.config import ArcaneConfig
from repro.obs import (
    NULL_RECORDER,
    RollingMetrics,
    SpanRecorder,
    auto_interval,
    build_timeline,
    chrome_trace,
    render_timeline,
    validate_trace,
    write_chrome_trace,
)
from repro.serve.engine import ServingEngine
from repro.serve.faults import ServingError, WorkerSupervisor
from repro.serve.request import gemm_request

CFG = ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=8, main_memory_kib=512)

#: a faulted online scenario known (fixed seeds) to produce retries and
#: failovers while every request still completes
FAULTED = dict(traffic="poisson:25", seed=7, faults="kill:0.3", fault_seed=3)


def small_requests(count=12):
    # a few distinct payloads cycled, so the replay cache sees repeats
    # (first launch of each payload is a miss, later ones are hits)
    rng = np.random.default_rng(42)
    payloads = [
        (
            rng.integers(-8, 8, (8, 8)).astype(np.int8),
            rng.integers(-8, 8, (8, 8)).astype(np.int8),
        )
        for _ in range(3)
    ]
    return [
        gemm_request(rid, *payloads[rid % len(payloads)]) for rid in range(count)
    ]


def faulted_report(observe=True, **overrides):
    engine = ServingEngine(pool_size=2, config=CFG)
    kwargs = dict(FAULTED, observe=observe)
    kwargs.update(overrides)
    return engine.serve_online(small_requests(), **kwargs)


# -- span recorder unit behavior ---------------------------------------------


class TestSpanRecorder:
    def test_begin_end_tree(self):
        rec = SpanRecorder()
        root = rec.begin("request 0", "request", 10, request=0)
        child = rec.begin("attempt 1", "attempt", 10, parent=root)
        rec.end(child, 50, status="ok")
        rec.end(root, 50, status="ok")
        assert rec.open_spans == 0
        assert [s.span_id for s in rec.tree(root)] == [root, child]
        assert rec.spans[child].duration_cycles == 40

    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            SpanRecorder().begin("x", "nonsense", 0)

    def test_rejects_double_end_and_time_travel(self):
        rec = SpanRecorder()
        span = rec.begin("x", "request", 10)
        with pytest.raises(ValueError):
            rec.end(span, 5)
        rec.end(span, 10)
        with pytest.raises(ValueError):
            rec.end(span, 20)

    def test_none_attrs_dropped(self):
        rec = SpanRecorder()
        span = rec.begin("x", "request", 0, worker=None, kind="gemm")
        assert rec.spans[span].attrs == {"kind": "gemm"}

    def test_find_by_category_and_attrs(self):
        rec = SpanRecorder()
        rec.begin("a", "attempt", 0, worker=0)
        rec.begin("b", "attempt", 0, worker=1)
        rec.begin("c", "launch", 0, worker=1)
        assert len(rec.find("attempt")) == 2
        assert len(rec.find(worker=1)) == 2
        assert len(rec.find("launch", worker=1)) == 1

    def test_null_recorder_is_inert(self):
        span = NULL_RECORDER.begin("x", "anything-goes", 5)
        NULL_RECORDER.end(span, 1)  # no validation, no storage
        NULL_RECORDER.instant("y", 2)
        assert NULL_RECORDER.enabled is False


# -- rolling metrics unit behavior -------------------------------------------


class TestRollingMetrics:
    def test_counts_land_in_windows(self):
        metrics = RollingMetrics(100)
        metrics.count(10, "arrivals")
        metrics.count(99, "arrivals")
        metrics.count(100, "arrivals")
        samples = metrics.samples()
        assert [s["arrivals"] for s in samples] == [2, 1]
        assert samples[0]["start_cycle"] == 0
        assert samples[1]["end_cycle"] == 200

    def test_level_is_running_sum_at_window_edge(self):
        metrics = RollingMetrics(100)
        metrics.level(10, "queue", +1)
        metrics.level(20, "queue", +1)
        metrics.level(150, "queue", -1)
        metrics.level(350, "queue", -1)
        assert [s["queue"] for s in metrics.samples()] == [2, 1, 1, 0]

    def test_busy_fraction_overlap(self):
        metrics = RollingMetrics(100)
        metrics.busy("busy", "0", 50, 250)
        samples = metrics.samples()
        assert [s["busy"]["0"] for s in samples] == [0.5, 1.0, 0.5]

    def test_point_percentiles_per_window(self):
        metrics = RollingMetrics(100)
        for value in (10, 20, 30):
            metrics.point(50, "lat", value)
        metrics.point(150, "lat", 5)
        samples = metrics.samples()
        assert samples[0]["lat"]["n"] == 3
        assert samples[0]["lat"]["max"] == 30
        assert samples[1]["lat"] == {"n": 1, "p50": 5.0, "p99": 5.0, "max": 5}

    def test_auto_interval_is_power_of_two(self):
        for makespan in (1, 100, 12345, 1 << 20):
            interval = auto_interval(makespan)
            assert interval & (interval - 1) == 0
        assert auto_interval(0) == 1024

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            RollingMetrics(0)
        metrics = RollingMetrics(10)
        with pytest.raises(ValueError):
            metrics.count(-1, "x")
        with pytest.raises(ValueError):
            metrics.busy("b", "0", 10, 5)


# -- supervisor health instants ----------------------------------------------


class TestSupervisorRecorder:
    def test_health_transitions_mirror_to_recorder(self):
        supervisor = WorkerSupervisor(2, threshold=2, quarantine_for=1)
        recorder = SpanRecorder()
        supervisor.recorder = recorder
        error = ServingError("boom")
        supervisor.record_failure(0, 10, error)
        supervisor.record_failure(0, 20, error)  # -> quarantined
        supervisor.tick(30)  # -> probation
        supervisor.record_success(0, 40)  # -> reinstated
        names = [i.name for i in recorder.instants]
        assert names == ["quarantined", "probation", "reinstated"]
        assert all(i.attrs["worker"] == 0 for i in recorder.instants)
        # the JSON event log saw the same transitions
        assert [e["event"] for e in supervisor.events] == names


# -- the faulted end-to-end run ----------------------------------------------


class TestFaultedRunSpans:
    @pytest.fixture(scope="class")
    def report(self):
        return faulted_report()

    def test_every_span_closed(self, report):
        assert report.spans.open_spans == 0

    def test_retried_request_tree_shows_failed_attempt_and_failover(self, report):
        retried = [r for r in report.results if r.attempts > 1 and r.completed]
        assert retried, "seeds must produce at least one retried completion"
        result = retried[0]
        root = report.spans.find("request", request=result.request_id)[0]
        attempts = report.spans.children(root.span_id)
        assert [s.category for s in attempts] == ["attempt"] * result.attempts
        failed, final = attempts[0], attempts[-1]
        # the failed attempt: zero duration at its dispatch instant,
        # annotated with the injected fault class
        assert failed.attrs["status"] == "failed"
        assert failed.attrs["fault_class"] == "kill"
        assert failed.attrs["injected"] is True
        assert failed.duration_cycles == 0
        # the retry failed over to a different worker
        assert final.attrs["cause"] == "retry"
        assert final.attrs["failover"] is True
        assert final.attrs["worker"] != failed.attrs["worker"]
        assert final.attrs["status"] == "ok"
        # service child nests inside the attempt, launches inside service
        service = [
            s for s in report.spans.children(final.span_id)
            if s.category == "dispatch"
        ]
        assert len(service) == 1
        launches = report.spans.children(service[0].span_id)
        assert launches and all(s.category == "launch" for s in launches)
        assert all(s.attrs["replay"] in ("hit", "miss", "bypassed", "off")
                   for s in launches)

    def test_launch_replay_tags_match_results(self, report):
        for result in report.results:
            if not result.completed:
                continue
            spans = [
                s for s in report.spans.find("launch", request=result.request_id)
            ]
            assert [s.attrs["replay"] for s in spans] == [
                launch["replay"] for launch in result.launches
            ]

    def test_replay_hits_appear_after_warmup(self, report):
        tags = [
            launch["replay"] for result in report.results
            for launch in result.launches
        ]
        assert "hit" in tags and "miss" in tags

    def test_spans_nest_within_parents(self, report):
        for span in report.spans.spans:
            if span.parent_id is None:
                continue
            parent = report.spans.spans[span.parent_id]
            assert parent.start_cycle <= span.start_cycle
            assert span.end_cycle <= parent.end_cycle


class TestTimeline:
    @pytest.fixture(scope="class")
    def report(self):
        return faulted_report()

    def test_totals_match_report(self, report):
        timeline = report.timeline
        n = len(report.results)
        completed = sum(1 for r in report.results if r.completed)
        assert sum(s["arrivals"] for s in timeline) == n
        assert sum(s["completions"] for s in timeline) == completed
        retries = report.availability["retries"]
        assert sum(s["retries"] for s in timeline) == retries
        assert sum(s["failed_attempts"] for s in timeline) == sum(
            report.availability["failed_attempts_by_class"].values()
        )

    def test_gauges_return_to_zero(self, report):
        assert report.timeline[-1]["queue_depth"] == 0
        assert report.timeline[-1]["in_flight"] == 0

    def test_every_window_has_full_schema(self, report):
        for sample in report.timeline:
            for key in ("window", "start_cycle", "end_cycle", "arrivals",
                        "completions", "sheds", "retries", "queue_depth",
                        "in_flight", "worker_busy", "latency",
                        "replay_hits", "replay_misses"):
                assert key in sample, key
            assert set(sample["worker_busy"]) == {"0", "1"}

    def test_metrics_interval_override(self):
        report = faulted_report(metrics_interval=1 << 20)
        interval = report.timeline[0]["end_cycle"] - report.timeline[0]["start_cycle"]
        assert interval == 1 << 20

    def test_timeline_in_as_dict_and_summary(self, report):
        record = report.as_dict()
        assert record["timeline"] == report.timeline
        json.dumps(record)  # JSON-clean
        assert "timeline" in report.summary()

    def test_no_timeline_when_not_observed(self):
        report = faulted_report(observe=False)
        assert report.timeline is None
        assert report.spans is None
        assert "timeline" not in report.as_dict()


class TestMergedEvents:
    def test_cycle_sorted_and_sourced(self):
        report = faulted_report()
        events = report.events()
        assert events, "online run must produce events"
        cycles = [e["cycle"] for e in events]
        assert cycles == sorted(cycles)
        sources = {e["source"] for e in events}
        assert "dispatch" in sources and "fault" in sources
        kinds_by_source = {"dispatch": {"arrival", "dispatch", "completion"},
                           "fault": {"fail", "retry", "shed"},
                           "health": {"quarantined", "probation",
                                      "forced_probation", "reinstated"}}
        for event in events:
            assert event["kind"] in kinds_by_source[event["source"]]

    def test_available_without_observe(self):
        # the merged accessor rides on the dispatch log, not on spans
        report = faulted_report(observe=False)
        assert report.events()


# -- equivalence: observe on/off is bit-identical -----------------------------


class TestObservabilityEquivalence:
    def test_observed_run_bit_identical(self):
        plain = faulted_report(observe=False)
        observed = faulted_report(observe=True)
        assert plain.makespan_cycles == observed.makespan_cycles
        assert plain.latency_cycles == observed.latency_cycles
        assert plain.availability == observed.availability
        for a, b in zip(plain.results, observed.results):
            assert a.request_id == b.request_id
            assert a.status == b.status
            assert a.sim_cycles == b.sim_cycles
            assert a.attempts == b.attempts
            assert a.arrival_cycle == b.arrival_cycle
            assert a.start_cycle == b.start_cycle
            assert a.completion_cycle == b.completion_cycle
            assert a.breakdown.as_dict() == b.breakdown.as_dict()
            if a.output is None:
                assert b.output is None
            else:
                assert np.array_equal(a.output, b.output)


# -- trace export -------------------------------------------------------------


class TestTraceExport:
    @pytest.fixture(scope="class")
    def report(self):
        return faulted_report()

    def test_chrome_shape(self, report):
        trace = chrome_trace(report)
        assert validate_trace(trace) == []
        for event in trace["traceEvents"]:
            assert "ph" in event and "ts" in event and "pid" in event

    def test_worker_processes_and_dispatcher(self, report):
        trace = chrome_trace(report)
        names = {
            event["pid"]: event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M"
        }
        assert names == {0: "worker 0", 1: "worker 1", 2: "dispatcher"}

    def test_counter_track_present(self, report):
        counters = [
            e for e in chrome_trace(report)["traceEvents"] if e["ph"] == "C"
        ]
        assert counters
        assert all("queue_depth" in e["args"] for e in counters)

    def test_same_seed_byte_identical(self, tmp_path):
        first = write_chrome_trace(faulted_report(), tmp_path / "a.json")
        second = write_chrome_trace(faulted_report(), tmp_path / "b.json")
        with open(first, "rb") as fa, open(second, "rb") as fb:
            assert fa.read() == fb.read()

    def test_export_requires_observed_report(self):
        with pytest.raises(ValueError):
            chrome_trace(faulted_report(observe=False))

    def test_written_file_parses_and_validates(self, report, tmp_path):
        path = write_chrome_trace(report, tmp_path / "run.trace.json")
        with open(path, "r", encoding="utf-8") as handle:
            assert validate_trace(json.load(handle)) == []

    def test_validate_rejects_malformed(self):
        assert validate_trace({}) == ["missing or non-list 'traceEvents'"]
        problems = validate_trace({"traceEvents": [{"ph": "X"}]})
        assert any("pid" in p for p in problems)
        assert any("ts" in p for p in problems)

    def test_render_timeline_text(self, report):
        text = render_timeline(report, width=40)
        assert "queue_depth" in text
        assert "worker 0 busy" in text
        assert "windows" in text.splitlines()[0]

    def test_render_timeline_without_observe(self):
        assert "observe=True" in render_timeline(faulted_report(observe=False))
