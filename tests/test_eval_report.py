"""Tests for the one-shot reproduction report generator."""

from repro.eval.report import (
    anchors_section,
    build_report,
    fig3_section,
    fig4_section,
    sota_section,
    table2_section,
)


def test_table2_section_contents():
    text = table2_section()
    assert "ARCANE 4 VPUs x 8 lanes" in text
    assert "+41.4%" in text or "+41.3%" in text
    assert "X-HEEP baseline" in text


def test_fig3_section_fast_grid():
    text = fig3_section(fast=True)
    assert "preamble" in text and "compute" in text
    assert "(16, 32, 64)" in text


def test_fig4_section_fast_grid():
    text = fig4_section(fast=True)
    assert "CV32E40PX" in text
    assert text.count("int8") >= 3


def test_sota_section():
    text = sota_section()
    assert "BLADE" in text and "Intel CNC" in text and "75x" in text


def test_anchors_section_lists_all():
    from repro.eval.calibration import PAPER_ANCHORS

    text = anchors_section()
    for entry in PAPER_ANCHORS:
        assert entry.name in text


def test_full_fast_report():
    report = build_report(fast=True)
    assert "Table II" in report
    assert "Figure 3" in report
    assert "Figure 4" in report
    assert "rerun without --fast" in report  # headline grid skipped
