"""ISS tests for the XCVPULP extension: SIMD, MAC, hw loops, post-increment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.core import Cpu
from repro.isa.asm import assemble
from repro.mem.memory import MainMemory
from repro.utils.bitops import to_signed
from repro.utils.fixedint import wrap32


def run(source: str) -> Cpu:
    program = assemble(source)
    memory = MainMemory(64 * 1024)
    memory.write_block(0, bytes(program.data))
    cpu = Cpu(memory)
    cpu.run()
    return cpu


def pack_bytes(values) -> int:
    return int.from_bytes(bytes(v & 0xFF for v in values), "little")


class TestPackedSimd:
    def test_pv_add_b(self):
        cpu = run(
            f"li a0, {pack_bytes([1, 2, 3, 4])}\n"
            f"li a1, {pack_bytes([10, 20, 30, 40])}\n"
            "pv.add.b a2, a0, a1\nebreak"
        )
        assert cpu.regs[12] == pack_bytes([11, 22, 33, 44])

    def test_pv_add_b_wraps_lanes(self):
        cpu = run(
            f"li a0, {pack_bytes([127, 0, 0, 0])}\n"
            f"li a1, {pack_bytes([1, 0, 0, 0])}\n"
            "pv.add.b a2, a0, a1\nebreak"
        )
        assert cpu.regs[12] & 0xFF == 0x80  # 127 + 1 wraps to -128

    def test_pv_dotsp_b(self):
        cpu = run(
            f"li a0, {pack_bytes([1, -2, 3, -4])}\n"
            f"li a1, {pack_bytes([5, 6, 7, 8])}\n"
            "pv.dotsp.b a2, a0, a1\nebreak"
        )
        assert to_signed(cpu.regs[12]) == 1 * 5 - 2 * 6 + 3 * 7 - 4 * 8

    def test_pv_sdotsp_accumulates(self):
        cpu = run(
            "li a2, 100\n"
            f"li a0, {pack_bytes([1, 1, 1, 1])}\n"
            f"li a1, {pack_bytes([2, 2, 2, 2])}\n"
            "pv.sdotsp.b a2, a0, a1\nebreak"
        )
        assert cpu.regs[12] == 108

    def test_pv_dotsp_h(self):
        word = (np.int16(-3).astype(np.uint16) .item() << 16) | 7
        cpu = run(
            f"li a0, {word}\nli a1, {(2 << 16) | 4}\npv.dotsp.h a2, a0, a1\nebreak"
        )
        assert to_signed(cpu.regs[12]) == 7 * 4 + (-3) * 2

    def test_pv_max_min(self):
        cpu = run(
            f"li a0, {pack_bytes([1, -5, 3, -1])}\n"
            f"li a1, {pack_bytes([0, 0, 0, 0])}\n"
            "pv.max.b a2, a0, a1\npv.min.b a3, a0, a1\nebreak"
        )
        assert cpu.regs[12] == pack_bytes([1, 0, 3, 0])
        assert cpu.regs[13] == pack_bytes([0, -5, 0, -1])

    def test_pv_extract_insert(self):
        cpu = run(
            f"li a0, {pack_bytes([10, 20, 30, 40])}\n"
            "li a1, 2\npv.extract.b a2, a0, a1\n"
            "li a3, 0\nli a4, 99\nli a5, 1\n"
            f"li a3, {pack_bytes([1, 2, 3, 4])}\n"
            "pv.insert.b a3, a4, a5\nebreak"
        )
        assert cpu.regs[12] == 30
        assert cpu.regs[13] == pack_bytes([1, 99, 3, 4])

    @given(st.lists(st.integers(-128, 127), min_size=4, max_size=4),
           st.lists(st.integers(-128, 127), min_size=4, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_dotsp_matches_numpy(self, a, b):
        cpu = run(
            f"li a0, {pack_bytes(a)}\nli a1, {pack_bytes(b)}\n"
            "pv.dotsp.b a2, a0, a1\nebreak"
        )
        expected = int(np.dot(np.array(a, np.int64), np.array(b, np.int64)))
        assert cpu.regs[12] == wrap32(expected)


class TestScalarDsp:
    def test_cv_mac_msu(self):
        cpu = run("li a0, 10\nli a1, 3\nli a2, 4\ncv.mac a0, a1, a2\nebreak")
        assert cpu.regs[10] == 22
        cpu = run("li a0, 10\nli a1, 3\nli a2, 4\ncv.msu a0, a1, a2\nebreak")
        assert to_signed(cpu.regs[10]) == -2

    def test_cv_minmax_abs(self):
        cpu = run(
            "li a0, -7\nli a1, 3\n"
            "cv.min a2, a0, a1\ncv.max a3, a0, a1\ncv.abs a4, a0\nebreak"
        )
        assert to_signed(cpu.regs[12]) == -7
        assert cpu.regs[13] == 3
        assert cpu.regs[14] == 7

    def test_cv_clip(self):
        cpu = run("li a0, 300\nli a1, 8\ncv.clip a2, a0, a1\nebreak")
        assert cpu.regs[12] == 127


class TestPostIncrement:
    def test_load_advances_pointer(self):
        cpu = run(
            """
                li a1, 0x1000
                li t0, 11
                sw t0, 0(a1)
                li t0, 22
                sw t0, 4(a1)
                cv.lw a2, 4(a1!)
                cv.lw a3, 4(a1!)
                ebreak
            """
        )
        assert cpu.regs[12] == 11 and cpu.regs[13] == 22
        assert cpu.regs[11] == 0x1008

    def test_store_advances_pointer(self):
        cpu = run(
            """
                li a1, 0x1000
                li t0, 7
                cv.sw t0, 4(a1!)
                cv.sw t0, 4(a1!)
                lw a2, 0x0(zero)
                ebreak
            """
        )
        assert cpu.regs[11] == 0x1008
        assert cpu.memory.read_u32(0x1000) == 7
        assert cpu.memory.read_u32(0x1004) == 7


class TestHardwareLoops:
    def test_setup_loop_count(self):
        cpu = run(
            """
                li a0, 0
                li t0, 8
                cv.setup 0, t0, done
                addi a0, a0, 1
            done:
                ebreak
            """
        )
        assert cpu.regs[10] == 8

    def test_multi_instruction_body(self):
        cpu = run(
            """
                li a0, 0
                li a1, 0
                li t0, 5
                cv.setup 0, t0, done
                addi a0, a0, 1
                addi a1, a1, 2
            done:
                ebreak
            """
        )
        assert cpu.regs[10] == 5 and cpu.regs[11] == 10

    def test_nested_loops(self):
        cpu = run(
            """
                li a0, 0
                li t0, 3
                cv.setup 1, t0, outer_done
                li t1, 4
                cv.setup 0, t1, inner_done
                addi a0, a0, 1
            inner_done:
                nop
            outer_done:
                ebreak
            """
        )
        assert cpu.regs[10] == 12

    def test_loop_has_no_branch_penalty(self):
        body = """
            li a0, 0
            li t0, {n}
            cv.setup 0, t0, done
            addi a0, a0, 1
        done:
            ebreak
        """
        cpu10 = run(body.format(n=10))
        cpu11 = run(body.format(n=11))
        # one more iteration costs exactly one cycle (single-cycle addi)
        assert cpu11.cycles - cpu10.cycles == 1
