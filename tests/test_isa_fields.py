"""Encode/decode round-trip tests for the RV32 instruction formats."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import fields

regs = st.integers(min_value=0, max_value=31)
funct3s = st.integers(min_value=0, max_value=7)


class TestRType:
    @given(regs, regs, regs, funct3s)
    def test_roundtrip(self, rd, rs1, rs2, funct3):
        word = fields.encode_r(fields.OPCODE_OP, rd, funct3, rs1, rs2, 0b0100000)
        decoded = fields.decode_r(word)
        assert decoded["rd"] == rd
        assert decoded["rs1"] == rs1
        assert decoded["rs2"] == rs2
        assert decoded["funct3"] == funct3
        assert decoded["funct7"] == 0b0100000

    def test_bad_register_rejected(self):
        with pytest.raises(ValueError):
            fields.encode_r(fields.OPCODE_OP, 32, 0, 0, 0, 0)


class TestIType:
    @given(regs, regs, st.integers(min_value=-2048, max_value=2047))
    def test_roundtrip(self, rd, rs1, imm):
        word = fields.encode_i(fields.OPCODE_OP_IMM, rd, 0, rs1, imm)
        decoded = fields.decode_i(word)
        assert decoded["imm"] == imm
        assert decoded["rd"] == rd
        assert decoded["rs1"] == rs1

    def test_imm_overflow_rejected(self):
        with pytest.raises(ValueError):
            fields.encode_i(fields.OPCODE_OP_IMM, 1, 0, 1, 5000)


class TestSType:
    @given(regs, regs, st.integers(min_value=-2048, max_value=2047))
    def test_roundtrip(self, rs1, rs2, imm):
        word = fields.encode_s(fields.OPCODE_STORE, 0b010, rs1, rs2, imm)
        decoded = fields.decode_s(word)
        assert decoded["imm"] == imm
        assert decoded["rs1"] == rs1
        assert decoded["rs2"] == rs2


class TestBType:
    @given(regs, regs, st.integers(min_value=-2048, max_value=2047).map(lambda v: v * 2))
    def test_roundtrip(self, rs1, rs2, imm):
        word = fields.encode_b(fields.OPCODE_BRANCH, 0b001, rs1, rs2, imm)
        decoded = fields.decode_b(word)
        assert decoded["imm"] == imm

    def test_odd_offset_rejected(self):
        with pytest.raises(ValueError):
            fields.encode_b(fields.OPCODE_BRANCH, 0, 1, 2, 3)


class TestUJTypes:
    @given(regs, st.integers(min_value=0, max_value=(1 << 20) - 1))
    def test_u_roundtrip(self, rd, imm):
        word = fields.encode_u(fields.OPCODE_LUI, rd, imm)
        decoded = fields.decode_u(word)
        assert decoded["imm"] == imm
        assert decoded["rd"] == rd

    @given(regs, st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1).map(lambda v: v * 2))
    def test_j_roundtrip(self, rd, imm):
        word = fields.encode_j(fields.OPCODE_JAL, rd, imm)
        decoded = fields.decode_j(word)
        assert decoded["imm"] == imm
        assert decoded["rd"] == rd


class TestR4Type:
    @given(regs, regs, regs, regs)
    def test_roundtrip(self, rd, rs1, rs2, rs3):
        word = fields.encode_r4(fields.OPCODE_CUSTOM_2, rd, 2, rs1, rs2, rs3, 0)
        decoded = fields.decode_r4(word)
        assert decoded["rs3"] == rs3
        assert decoded["rs1"] == rs1
        assert decoded["rs2"] == rs2
        assert decoded["rd"] == rd

    def test_opcode_preserved(self):
        word = fields.encode_r4(fields.OPCODE_CUSTOM_2, 1, 2, 3, 4, 5, 0)
        assert fields.decode_opcode(word) == 0x5B
