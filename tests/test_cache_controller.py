"""LLC controller tests: hits, misses, write-back, locking and hazards."""

import pytest

from repro.cache.address_table import OperandKind
from repro.cache.line import LineRole
from repro.sim.kernel import Simulator


class TestHitMiss:
    def test_miss_then_hit(self, cache):
        cache.memory.write_u32(0x100, 0xCAFEBABE)
        assert cache.read(0x100) == 0xCAFEBABE
        assert cache.stats.value("llc.misses") == 1
        assert cache.read(0x100) == 0xCAFEBABE
        assert cache.stats.value("llc.hits") == 1

    def test_hit_is_single_cycle(self, cache):
        cache.read(0x100)  # miss fills the line
        before = cache.sim.now
        cache.read(0x104)  # same line
        assert cache.sim.now - before == 1  # paper III-A.1

    def test_miss_pays_offchip_fill(self, cache):
        start = cache.sim.now
        cache.read(0x100)
        fill = cache.bus.transfer_cycles(cache.ct.line_bytes, offchip=True)
        assert cache.sim.now - start == fill  # data forwarded as the fill completes

    def test_write_sets_dirty(self, cache):
        cache.write(0x100, 42)
        line = cache.ct.lookup(0x100)
        assert line.dirty
        assert cache.memory.read_u32(0x100) == 0  # write-back policy: not yet in memory

    def test_dirty_eviction_writes_back(self, cache):
        # fill all 8 lines with writes, then stream reads to force evictions
        for i in range(cache.ct.n_lines):
            cache.write(0x1000 + i * 64, i + 1)
        for i in range(cache.ct.n_lines):
            cache.read(0x8000 + i * 64)
        assert cache.stats.value("llc.writebacks") > 0
        assert cache.memory.read_u32(0x1000) == 1  # landed in memory

    def test_sub_word_accesses(self, cache):
        cache.write(0x200, 0xAB, size=1)
        cache.write(0x202, 0x1234, size=2)
        assert cache.read(0x200, size=1) == 0xAB
        assert cache.read(0x202, size=2) == 0x1234

    def test_misaligned_rejected(self, cache):
        with pytest.raises(ValueError, match="misaligned"):
            cache.read(0x101, 4)

    def test_bad_size_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.read(0x100, 3)


class TestLocking:
    def test_lock_blocks_host(self, cache):
        sim = cache.sim
        sim.run_process(cache.controller.acquire_lock("ecpu"))
        log = []

        def host():
            value = yield from cache.controller.host_read(0x100, 4)
            log.append(sim.now)
            return value

        def ecpu():
            yield 50
            cache.controller.release_lock("ecpu")

        sim.process(host())
        sim.process(ecpu())
        sim.run()
        assert log and log[0] >= 50
        assert cache.stats.value("llc.host_lock_stalls") >= 1

    def test_lock_not_granted_during_host_op(self, cache):
        sim = cache.sim
        order = []

        def host():
            yield from cache.controller.host_read(0x100, 4)  # slow miss
            order.append(("host_done", sim.now))

        def ecpu():
            yield 1  # arrive while the host miss is in flight
            yield from cache.controller.acquire_lock("ecpu")
            order.append(("lock", sim.now))
            cache.controller.release_lock("ecpu")

        sim.process(host())
        sim.process(ecpu())
        sim.run()
        assert order[0][0] == "host_done"  # paper III-A.2: C-RT stalls

    def test_release_requires_holder(self, cache):
        with pytest.raises(RuntimeError):
            cache.controller.release_lock("ecpu")


class TestHazards:
    def test_war_store_blocks_until_source_release(self, cache):
        sim = cache.sim
        entry = cache.at.register(0x100, 0x140, OperandKind.SOURCE, matrix_id=5)
        done = []

        def host():
            yield from cache.controller.host_write(0x104, 7, 4)
            done.append(sim.now)

        def release():
            yield 200
            cache.at.release(5)

        sim.process(host())
        sim.process(release())
        sim.run()
        assert done[0] >= 200
        assert cache.stats.value("llc.hazard_war_stalls") >= 1

    def test_source_reads_never_stall(self, cache):
        cache.at.register(0x100, 0x140, OperandKind.SOURCE, matrix_id=5)
        cache.read(0x104)  # completes without a release
        assert cache.stats.value("llc.hazard_war_stalls") == 0

    def test_raw_load_blocks_on_dest(self, cache):
        sim = cache.sim
        cache.at.register(0x200, 0x240, OperandKind.DEST, matrix_id=6)
        done = []

        def host():
            value = yield from cache.controller.host_read(0x200, 4)
            done.append((sim.now, value))

        def writer():
            yield 100
            cache.controller.poke(0x200, (99).to_bytes(4, "little"))
            cache.at.release(6)

        sim.process(host())
        sim.process(writer())
        sim.run()
        assert done[0][0] >= 100
        assert done[0][1] == 99  # host observed the post-release data
        assert cache.stats.value("llc.hazard_raw_stalls") >= 1

    def test_waw_store_blocks_on_dest(self, cache):
        sim = cache.sim
        cache.at.register(0x200, 0x240, OperandKind.DEST, matrix_id=6)
        done = []

        def host():
            yield from cache.controller.host_write(0x200, 1, 4)
            done.append(sim.now)

        def release():
            yield 60
            cache.at.release(6)

        sim.process(host())
        sim.process(release())
        sim.run()
        assert done[0] >= 60
        assert cache.stats.value("llc.hazard_waw_stalls") >= 1

    def test_non_operand_traffic_flows_during_kernel(self, cache):
        cache.at.register(0x100, 0x140, OperandKind.DEST, matrix_id=1)
        start = cache.sim.now
        cache.read(0x4000)  # unrelated address: proceeds (fill + hit)
        assert cache.sim.now - start < 100


class TestRouting:
    def test_route_read_prefers_cache(self, cache):
        cache.memory.write_u32(0x100, 1)
        cache.write(0x100, 2)  # cached dirty copy
        value = int.from_bytes(cache.controller.route_read(0x100, 4), "little")
        assert value == 2

    def test_route_read_falls_back_to_memory(self, cache):
        cache.memory.write_u32(0x500, 77)
        assert int.from_bytes(cache.controller.route_read(0x500, 4), "little") == 77

    def test_route_read_spans_lines(self, cache):
        cache.memory.write_block(0x0, bytes(range(128)))
        cache.read(0x0)  # cache the first line only
        data = cache.controller.route_read(0x20, 64)  # crosses 64B boundary
        assert data == bytes(range(0x20, 0x60))

    def test_route_write_fetch_on_write(self, cache):
        cache.memory.write_block(0x300, bytes(range(64)))
        cache.controller.route_write(0x308, b"\xAA\xBB")
        line = cache.ct.lookup(0x308)
        assert line is not None and line.dirty  # landed in cache (III-A.4)
        data = cache.controller.route_read(0x300, 16)
        assert data[8] == 0xAA and data[9] == 0xBB
        assert data[0] == 0  # untouched bytes preserved by the fetch

    def test_set_and_clear_region_roles(self, cache):
        cache.read(0x100)
        marked = cache.controller.set_role_for_region(0x100, 0x140, LineRole.SOURCE)
        assert marked == 1
        assert cache.ct.lookup(0x100).role is LineRole.SOURCE
        cleared = cache.controller.clear_roles_for_region(0x100, 0x140)
        assert cleared == 1
        assert cache.ct.lookup(0x100).role is LineRole.NONE

    def test_flush(self, cache):
        cache.write(0x100, 123)
        assert cache.controller.flush() == 1
        assert cache.memory.read_u32(0x100) == 123

    def test_refill_restores_operand_role(self, cache):
        # a line belonging to a registered region regains its marker on refill
        cache.at.register(0x100, 0x140, OperandKind.SOURCE, matrix_id=3)
        cache.read(0x100)  # miss -> fill; covered by AT -> marked SOURCE
        assert cache.ct.lookup(0x100).role is LineRole.SOURCE
