"""Decoder tests: RV32I/M plus dispatch behaviour and error cases."""

import pytest

from repro.isa import fields
from repro.isa.asm import assemble
from repro.isa.decode import DecodeError, decode


def asm1(text: str) -> int:
    """Assemble a single instruction and return its word."""
    return assemble(text).words()[0]


class TestRv32iDecode:
    @pytest.mark.parametrize(
        "text,mnemonic",
        [
            ("add a0, a1, a2", "add"),
            ("sub a0, a1, a2", "sub"),
            ("xor a0, a1, a2", "xor"),
            ("sltu a0, a1, a2", "sltu"),
            ("addi a0, a1, -5", "addi"),
            ("andi a0, a1, 255", "andi"),
            ("slli a0, a1, 3", "slli"),
            ("srai a0, a1, 3", "srai"),
            ("srli a0, a1, 3", "srli"),
            ("lw a0, 8(sp)", "lw"),
            ("lbu a0, 0(a1)", "lbu"),
            ("sh a0, 2(a1)", "sh"),
            ("lui a0, 0x12345", "lui"),
            ("auipc a0, 0x1", "auipc"),
            ("jalr ra, 0(a0)", "jalr"),
            ("ecall", "ecall"),
            ("ebreak", "ebreak"),
            ("fence", "fence"),
        ],
    )
    def test_mnemonics(self, text, mnemonic):
        assert decode(asm1(text)).mnemonic == mnemonic

    def test_branch_offsets(self):
        program = assemble("target:\n    nop\n    beq a0, a1, target")
        word = program.words()[1]
        instr = decode(word)
        assert instr.mnemonic == "beq"
        assert instr.imm == -4

    def test_jal_offset(self):
        program = assemble("    jal ra, target\n    nop\ntarget:\n    nop")
        instr = decode(program.words()[0])
        assert instr.mnemonic == "jal"
        assert instr.imm == 8

    def test_load_imm_sign(self):
        instr = decode(asm1("lw a0, -4(sp)"))
        assert instr.imm == -4

    def test_operand_accessor_raises_for_missing(self):
        instr = decode(asm1("add a0, a1, a2"))
        with pytest.raises(KeyError):
            instr.operand("csr")


class TestRv32mDecode:
    @pytest.mark.parametrize(
        "text", ["mul a0, a1, a2", "mulh a0, a1, a2", "mulhu a0, a1, a2",
                 "mulhsu a0, a1, a2", "div a0, a1, a2", "divu a0, a1, a2",
                 "rem a0, a1, a2", "remu a0, a1, a2"],
    )
    def test_muldiv(self, text):
        instr = decode(asm1(text))
        assert instr.mnemonic == text.split()[0]
        assert instr.extension == "m"


class TestCsrDecode:
    def test_csrrw(self):
        instr = decode(asm1("csrrw a0, 0x305, a1"))
        assert instr.mnemonic == "csrrw"
        assert instr.operand("csr") == 0x305

    def test_csrrsi(self):
        instr = decode(asm1("csrrsi zero, 0x300, 8"))
        assert instr.mnemonic == "csrrsi"
        assert instr.rs1 == 8  # zimm travels in the rs1 field

    def test_mret_wfi(self):
        assert decode(asm1("mret")).mnemonic == "mret"
        assert decode(asm1("wfi")).mnemonic == "wfi"


class TestDecodeErrors:
    def test_all_zero_is_illegal(self):
        with pytest.raises(DecodeError):
            decode(0)

    def test_unknown_major_opcode(self):
        with pytest.raises(DecodeError):
            decode(0x0000007F | (1 << 30))

    def test_error_carries_pc(self):
        try:
            decode(0, pc=0x100)
        except DecodeError as error:
            assert error.pc == 0x100
            assert "0x00000100" in str(error)
        else:  # pragma: no cover
            pytest.fail("expected DecodeError")

    def test_bad_funct7_in_op(self):
        # funct7=0x20 is only valid for sub/sra
        word = fields.encode_r(fields.OPCODE_OP, 1, 0b100, 1, 1, 0b0100000)
        with pytest.raises(DecodeError):
            decode(word)
