"""Shared fixtures for the ARCANE reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.address_table import AddressTable
from repro.cache.cache_table import CacheTable
from repro.cache.controller import LlcController
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem
from repro.mem.bus import BusModel
from repro.mem.memory import MainMemory
from repro.sim.kernel import Simulator
from repro.sim.stats import StatsRegistry
from repro.sim.trace import Tracer


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "dispatch: unified dispatch-core equivalence tests "
        "(serial vs multi-process, shared fleet replay cache)",
    )


#: A small configuration that keeps unit-test simulations fast while
#: retaining every architectural feature (4 VPUs, small cache/memory).
SMALL_CONFIG = ArcaneConfig(
    n_vpus=4,
    lanes=4,
    line_bytes=256,
    vpu_kib=8,
    main_memory_kib=512,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def small_config() -> ArcaneConfig:
    return SMALL_CONFIG


@pytest.fixture
def system(small_config) -> ArcaneSystem:
    return ArcaneSystem(small_config)


@pytest.fixture
def traced_system(small_config) -> ArcaneSystem:
    return ArcaneSystem(small_config, trace=True)


class CacheHarness:
    """A bare cache controller + memory universe for cache unit tests."""

    def __init__(self, n_vpus=2, vregs=4, line_bytes=64, memory_bytes=64 * 1024):
        self.sim = Simulator()
        self.stats = StatsRegistry()
        self.tracer = Tracer(enabled=True)
        self.memory = MainMemory(memory_bytes)
        self.bus = BusModel(offchip_latency=10)
        self.ct = CacheTable(n_vpus, vregs, line_bytes)
        self.at = AddressTable(8, self.sim)
        self.controller = LlcController(
            self.sim, self.ct, self.at, self.memory, self.bus, self.stats, self.tracer
        )

    def read(self, address: int, size: int = 4) -> int:
        """Run a host read to completion and return its value."""
        return self.sim.run_process(
            self.controller.host_read(address, size), name="read"
        )

    def write(self, address: int, value: int, size: int = 4) -> None:
        self.sim.run_process(
            self.controller.host_write(address, value, size), name="write"
        )


@pytest.fixture
def cache() -> CacheHarness:
    return CacheHarness()
