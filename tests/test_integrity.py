"""Data-integrity tests: ABFT checksums, detection policies, recovery.

Covers the tentpole arc end to end — hardware-level corruption injection
(bit flips in LLC-resident operands, DMA payload corruption, VPU
register-file flips, stuck cache lines), ABFT/digest/DMR detection,
corruption-aware escalation in the dispatch core, and replay-cache
poisoning defense (local invalidation + fleet-wide retraction).
"""

import numpy as np
import pytest

from repro.core.config import ArcaneConfig
from repro.integrity import (
    CORRUPTION_KINDS,
    INTEGRITY_POLICIES,
    CorruptionDirective,
    DigestLedger,
    coerce_policy,
    correct_single,
    covered,
    gemm_residues,
    output_digest,
    request_digest,
    verify_gemm,
)
from repro.serve import (
    FleetReplayCache,
    RetryPolicy,
    ServingEngine,
    SilentCorruptionError,
    SystemWorker,
    conv_layer_request,
    expected_output,
    gemm_request,
)

CFG = ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=8, main_memory_kib=512)


def gemm_batch(rng, count, shape=(4, 4)):
    return [
        gemm_request(
            rid,
            rng.integers(-5, 5, shape).astype(np.int16),
            rng.integers(-5, 5, (shape[1], shape[0])).astype(np.int16),
        )
        for rid in range(count)
    ]


def clean_gemm(seed=0, shape=(4, 4), dtype=np.int16):
    rng = np.random.default_rng(seed)
    a = rng.integers(-5, 5, shape).astype(dtype)
    b = rng.integers(-5, 5, (shape[1], shape[0])).astype(dtype)
    c = rng.integers(-5, 5, (shape[0], shape[0])).astype(dtype)
    out = (
        a.astype(np.int64) @ b.astype(np.int64) + c.astype(np.int64)
    ).astype(dtype)
    return a, b, c, out


class TestAbftChecksums:
    def test_clean_gemm_has_zero_residues(self):
        a, b, c, out = clean_gemm()
        row, col = gemm_residues(a, b, c, 1, 1, out)
        assert not row.any() and not col.any()

    def test_input_flip_manifests_in_residues(self):
        a, b, c, out = clean_gemm()
        bad_a = a.copy()
        bad_a[1, 2] ^= 1 << 3
        bad_out = (
            bad_a.astype(np.int64) @ b.astype(np.int64) + c.astype(np.int64)
        ).astype(np.int16)
        # residues are computed against the *claimed* inputs: a corrupted
        # A perturbs the output, so the column checksum breaks
        row, col = gemm_residues(a, b, c, 1, 1, bad_out)
        assert col.any()

    def test_single_output_flip_is_located_and_corrected(self):
        a, b, c, out = clean_gemm()
        bad = out.copy()
        bad[2, 1] ^= 1 << 7
        row, col = gemm_residues(a, b, c, 1, 1, bad)
        assert np.count_nonzero(row) == 1 and np.count_nonzero(col) == 1
        fixed = correct_single(bad, row, col)
        assert fixed is not None
        assert np.array_equal(fixed, out)

    def test_verify_gemm_statuses(self):
        a, b, c, out = clean_gemm()
        assert verify_gemm(a, b, c, 1, 1, out)[0] == "clean"
        single = out.copy()
        single[0, 3] ^= 1 << 2
        status, fixed = verify_gemm(a, b, c, 1, 1, single)
        assert status == "corrected"
        assert np.array_equal(fixed, out)
        multi = out.copy()
        multi[0, 0] ^= 1
        multi[3, 3] ^= 1
        assert verify_gemm(a, b, c, 1, 1, multi)[0] == "corrupt"

    def test_wrapping_arithmetic_matches_device_truncation(self):
        # int16 gemm that overflows: checksums must wrap exactly like the
        # device's int64-accumulate-then-truncate, or clean outputs would
        # be flagged
        rng = np.random.default_rng(3)
        a = rng.integers(-(2 ** 14), 2 ** 14, (4, 4)).astype(np.int16)
        b = rng.integers(-(2 ** 14), 2 ** 14, (4, 4)).astype(np.int16)
        c = np.zeros((4, 4), dtype=np.int16)
        out = (a.astype(np.int64) @ b.astype(np.int64)).astype(np.int16)
        assert verify_gemm(a, b, c, 1, 0, out)[0] == "clean"


class TestPoliciesAndCoverage:
    def test_policy_coercion(self):
        assert coerce_policy(None) == "off"
        for policy in INTEGRITY_POLICIES:
            assert coerce_policy(policy) == policy
        with pytest.raises(ValueError):
            coerce_policy("paranoid")

    def test_gemm_family_is_covered_conv_is_not(self, rng):
        gemm = gemm_batch(rng, 1)[0]
        assert covered(gemm)
        conv = conv_layer_request(
            1,
            rng.integers(0, 5, (6, 6)).astype(np.int16),
            rng.integers(-2, 2, (3, 3)).astype(np.int16),
        )
        assert not covered(conv)

    def test_digest_ledger_detects_divergence_on_repeat(self):
        ledger = DigestLedger()
        assert ledger.observe("k", b"x") is False  # first sighting: learn
        assert ledger.observe("k", b"x") is False  # confirmation
        assert ledger.observe("k", b"y") is True   # divergence
        # the entry is evicted on mismatch (the ledger cannot tell which
        # run was the corrupt one), so the next sighting relearns
        assert ledger.observe("k", b"y") is False

    def test_request_digest_tracks_payload(self, rng):
        first, second = gemm_batch(rng, 2)
        # request_id is not part of the identity; operands are
        clone = gemm_request(99, first.payload["a"], first.payload["b"])
        assert request_digest(first) == request_digest(clone)
        assert request_digest(first) != request_digest(second)

    def test_output_digest_is_content_addressed(self):
        a = np.arange(16, dtype=np.int16).reshape(4, 4)
        assert output_digest(a) == output_digest(a.copy())
        assert output_digest(a) != output_digest(a.T.copy())


class TestWorkerDetection:
    def test_flip_directive_raises_and_recovers(self, rng):
        worker = SystemWorker(0, CFG, integrity="abft")
        request = gemm_batch(rng, 1)[0]
        with pytest.raises(SilentCorruptionError):
            worker.run(
                request, directives=[CorruptionDirective("flip", site=5, value=0)]
            )
        # the corruption dies with the attempt: a clean rerun is correct
        result = worker.run(request)
        assert np.array_equal(result.output, expected_output(request))

    @pytest.mark.parametrize("kind,site", [("dma_corrupt", 2), ("vrf_flip", 0)])
    def test_transfer_and_register_corruption_detected(self, rng, kind, site):
        worker = SystemWorker(0, CFG, integrity="abft")
        request = gemm_batch(rng, 1)[0]
        with pytest.raises(SilentCorruptionError) as excinfo:
            worker.run(
                request, directives=[CorruptionDirective(kind, site=site, value=3)]
            )
        assert excinfo.value.fault_class == "corrupted"

    def test_digest_policy_detects_on_repeat(self, rng):
        worker = SystemWorker(0, CFG, integrity="digest")
        a = rng.integers(-5, 5, (4, 4)).astype(np.int16)
        b = rng.integers(-5, 5, (4, 4)).astype(np.int16)
        worker.run(gemm_request(0, a, b))  # ledger learns the clean digest
        with pytest.raises(SilentCorruptionError):
            worker.run(
                gemm_request(1, a, b),
                directives=[CorruptionDirective("flip", site=5, value=0)],
            )

    def test_dmr_detects_via_shadow_disagreement(self, rng):
        worker = SystemWorker(0, CFG, integrity="dmr")
        request = gemm_batch(rng, 1)[0]
        with pytest.raises(SilentCorruptionError) as excinfo:
            worker.run(
                request, directives=[CorruptionDirective("flip", site=5, value=0)]
            )
        assert "via dmr" in str(excinfo.value) or "via abft" in str(excinfo.value)

    def test_off_policy_attaches_no_ledger(self):
        assert SystemWorker(0, CFG).ledger is None
        assert SystemWorker(0, CFG, integrity="abft").ledger is not None


class TestReplayPoisoningDefense:
    def test_poisoned_recording_is_invalidated_and_retracted(self, rng):
        """A corruption that fires after the replay key is drawn poisons
        the recording; detection must invalidate it locally AND retract
        it from the fleet before any other worker replays it."""
        fleet = FleetReplayCache()
        workers = [
            SystemWorker(i, CFG, fleet=fleet, integrity="abft") for i in range(2)
        ]
        a = rng.integers(-5, 5, (4, 4)).astype(np.int16)
        b = rng.integers(-5, 5, (4, 4)).astype(np.int16)
        with pytest.raises(SilentCorruptionError):
            workers[0].run(
                gemm_request(0, a, b),
                directives=[CorruptionDirective("dma_corrupt", site=2, value=3)],
            )
        cache0 = workers[0].system.llc.runtime.replay_cache
        assert cache0.stats["invalidated"] >= 1
        assert fleet.stats["retracted"] >= 1
        # the second worker gets a replay MISS (the poisoned recording is
        # gone fleet-wide) and computes the correct answer from scratch
        request = gemm_request(1, a, b)
        result = workers[1].run(request)
        cache1 = workers[1].system.llc.runtime.replay_cache
        assert cache1.stats["fleet_hits"] == 0
        assert np.array_equal(result.output, expected_output(request))

    def test_end_to_end_outputs_stay_golden_with_shared_replay(self, rng):
        """Shared replay + DMA corruption: every completed output still
        matches the golden model (nothing ever replays poisoned rows)."""
        requests = gemm_batch(rng, 10)
        engine = ServingEngine(
            pool_size=2, config=CFG, share_replay=True, integrity="abft",
        )
        report = engine.serve(
            requests, verify=True, faults="dma_corrupt:0.4", fault_seed=7,
        )
        assert report.verified is True
        assert sum(report.integrity["injected"].values()) > 0


class TestServingIntegration:
    def test_abft_recall_is_one_and_detected_requests_recover(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG, integrity="abft")
        report = engine.serve(
            gemm_batch(rng, 12), verify="report", faults="flip:0.5", fault_seed=3,
        )
        integ = report.integrity
        assert integ["policy"] == "abft"
        assert integ["injected"]["flip"] > 0
        assert integ["detected"] > 0
        # every detected request escalated through retry back to ok
        assert integ["recovered"] == integ["detected"]
        assert integ["undetected"] == 0
        assert integ["recall"] == 1.0
        assert integ["covered"]["recall"] == 1.0
        assert integ["escalations"]["escalations"] >= integ["detected"]
        assert all(r.status == "ok" for r in report.results)

    def test_exhausted_escalation_is_failed_corrupted(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG, integrity="abft")
        report = engine.serve(
            gemm_batch(rng, 6), faults="flip:1", fault_seed=1,
            retry=RetryPolicy(max_attempts=1),
        )
        failed = [r for r in report.results if r.status == "failed"]
        assert failed
        assert all(r.fault_class == "corrupted" for r in failed)
        by_class = report.availability["failed_attempts_by_class"]
        assert by_class.get("corrupted", 0) == len(failed)

    def test_report_mode_marks_undetected_corruption(self, rng):
        """No integrity policy: injected flips sail through undetected;
        validate='report' flags them corrupted without aborting the batch
        and the recall accounting shows the misses."""
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve(
            gemm_batch(rng, 12), verify="report", faults="flip:0.5", fault_seed=3,
        )
        integ = report.integrity
        assert integ["policy"] == "off"
        assert integ["detected"] == 0
        corrupted = [r for r in report.results if r.status == "corrupted"]
        assert corrupted
        assert integ["undetected"] == len(corrupted)
        assert integ["recall"] < 1.0
        for result in corrupted:
            assert result.output is not None  # kept for forensics
            assert result.fault_class == "corrupted"
            assert "differ" in result.error
        # statuses and latency stats keep counting corrupted completions
        assert report.availability["statuses"]["corrupted"] == len(corrupted)
        assert report.n_requests == 12

    def test_strict_mode_still_raises(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        with pytest.raises(AssertionError, match="mismatch the golden model"):
            engine.serve(
                gemm_batch(rng, 12), verify="strict", faults="flip:0.5",
                fault_seed=3,
            )

    def test_stuck_line_arc_detect_quarantine_rebuild_reinstate(self, rng):
        """A stuck cache line keeps corrupting worker 0 until the
        supervisor quarantines it; the rebuild replaces the silicon (and
        the stuck line), and the worker comes back clean."""
        engine = ServingEngine(pool_size=2, config=CFG, integrity="abft")
        report = engine.serve(
            gemm_batch(rng, 10), verify="report",
            faults="stuck_line:0@1", fault_seed=10,
        )
        integ = report.integrity
        assert integ["injected"]["stuck_line"] == 1
        assert integ["detected"] >= 1
        assert integ["undetected"] == 0
        events = [e["event"] for e in report.availability["worker_events"]]
        assert "quarantined" in events
        assert engine.workers[0].rebuilds >= 1
        assert all(r.status == "ok" for r in report.results)

    def test_dmr_policy_detects_and_recovers(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG, integrity="dmr")
        report = engine.serve(
            gemm_batch(rng, 6), verify="report", faults="flip:0.4", fault_seed=5,
        )
        integ = report.integrity
        assert integ["detected"] > 0
        assert integ["recovered"] == integ["detected"]
        assert integ["recall"] == 1.0

    def test_integrity_events_ride_on_results(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG, integrity="abft")
        report = engine.serve(
            gemm_batch(rng, 8), faults="flip:0.5", fault_seed=3,
        )
        events = [
            event
            for result in report.results
            if result.integrity
            for event in result.integrity.get("events", [])
        ]
        assert events  # at least one benign flip survived to a result
        assert all(e["kind"] in CORRUPTION_KINDS for e in events)

    def test_online_serving_carries_integrity_section(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG, integrity="abft")
        report = engine.serve_online(
            gemm_batch(rng, 8), traffic="poisson:25", seed=7,
            verify="report", faults="flip:0.4", fault_seed=2,
        )
        integ = report.integrity
        assert integ["recall"] == 1.0
        assert report.as_dict()["integrity"] == integ


class TestOffModeBitIdentity:
    def test_no_plan_off_policy_leaves_reports_unchanged(self, rng):
        """IntegrityPolicy off + no fault plan: no integrity section, the
        legacy availability schema, and bit-identical outputs/cycles to a
        default engine — the zero-cost-when-off contract."""
        requests = gemm_batch(rng, 6)
        base = ServingEngine(pool_size=2, config=CFG).serve(requests)
        off = ServingEngine(pool_size=2, config=CFG, integrity="off").serve(requests)
        assert base.integrity is None and off.integrity is None
        assert "integrity" not in base.as_dict()
        assert sorted(base.availability["statuses"]) == [
            "failed", "ok", "shed", "timed_out"
        ]
        for a, b in zip(base.results, off.results):
            assert np.array_equal(a.output, b.output)
            assert a.sim_cycles == b.sim_cycles
            assert a.integrity is None and b.integrity is None

    def test_legacy_injected_schema_has_no_corruption_keys(self, rng):
        report = ServingEngine(pool_size=2, config=CFG).serve(
            gemm_batch(rng, 4), faults="kill:0.2", fault_seed=3,
        )
        assert sorted(report.availability["injected_faults"]) == [
            "crash_worker", "kill", "slow", "transient"
        ]
        assert report.integrity is None
