"""Tests for C-RT data structures: matrix map (renaming), queue, library."""

import pytest

from repro.isa.xmnmc import OffloadRequest, pack_pair
from repro.runtime.kernel_lib import KernelLibrary, KernelSpec
from repro.runtime.matrix import MatrixBinding, MatrixMap
from repro.runtime.phases import PhaseBreakdown
from repro.runtime.queue import KernelQueue, QueuedKernel
from repro.sim.kernel import Simulator
from repro.vpu.visa import ElementType


class TestMatrixBinding:
    def test_geometry(self):
        binding = MatrixBinding(address=0x1000, rows=4, cols=6, stride=8,
                                etype=ElementType.H)
        assert binding.row_bytes == 12
        assert binding.stride_bytes == 16
        assert binding.total_bytes == 48
        assert binding.row_address(2) == 0x1000 + 32
        assert binding.end_address == 0x1000 + 3 * 16 + 12

    def test_row_bounds(self):
        binding = MatrixBinding(0, 2, 2, 2, ElementType.B)
        with pytest.raises(IndexError):
            binding.row_address(2)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            MatrixBinding(0, 0, 4, 4, ElementType.B)
        with pytest.raises(ValueError):
            MatrixBinding(0, 4, 4, 2, ElementType.B)  # stride < cols


class TestMatrixMap:
    def test_bind_resolve(self):
        matrix_map = MatrixMap(4)
        binding = matrix_map.bind(0, 0x100, 3, 3, 3, ElementType.W)
        assert matrix_map.resolve(0) is binding
        assert matrix_map.is_bound(0)
        assert not matrix_map.is_bound(1)

    def test_unbound_register_raises(self):
        with pytest.raises(KeyError, match="xmr"):
            MatrixMap(4).resolve(0)

    def test_register_range_enforced(self):
        with pytest.raises(IndexError):
            MatrixMap(2).bind(2, 0, 1, 1, 1, ElementType.B)

    def test_listing1_stride_convention(self):
        # stride 1 in Listing 1 means densely packed -> stride == cols
        binding = MatrixMap(2).bind(0, 0, 4, 7, 1, ElementType.W)
        assert binding.stride == 7

    def test_rebind_without_pending_uses_is_not_a_rename(self):
        matrix_map = MatrixMap(2)
        matrix_map.bind(0, 0x100, 2, 2, 2, ElementType.B)
        matrix_map.bind(0, 0x200, 2, 2, 2, ElementType.B)
        assert matrix_map.rename_count == 0

    def test_rebind_with_pending_use_renames(self):
        matrix_map = MatrixMap(2)
        old = matrix_map.bind(0, 0x100, 2, 2, 2, ElementType.B)
        old.pending_uses += 1  # a queued kernel holds it
        new = matrix_map.bind(0, 0x200, 2, 2, 2, ElementType.B)
        assert matrix_map.rename_count == 1
        assert new is not old
        assert old.address == 0x100  # old binding untouched (kernel still safe)


class TestKernelQueue:
    def make_kernel(self, kernel_id=0):
        return QueuedKernel(kernel_id=kernel_id, func5=0, name="k",
                            etype=ElementType.W, dest=None, sources=[])

    def test_fifo_order(self):
        queue = KernelQueue(4)
        for i in range(3):
            queue.push(self.make_kernel(i))
        assert [queue.pop().kernel_id for _ in range(3)] == [0, 1, 2]

    def test_capacity(self):
        queue = KernelQueue(1)
        queue.push(self.make_kernel())
        assert queue.full
        with pytest.raises(OverflowError):
            queue.push(self.make_kernel(1))

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            KernelQueue(1).pop()

    def test_push_wait_backpressure(self):
        sim = Simulator()
        queue = KernelQueue(1, sim)
        queue.push(self.make_kernel(0))
        done = []

        def producer():
            yield from queue.push_wait(self.make_kernel(1))
            done.append(sim.now)

        def consumer():
            yield 30
            queue.pop()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert done[0] >= 30

    def test_pop_wait_blocks_until_push(self):
        sim = Simulator()
        queue = KernelQueue(2, sim)
        got = []

        def consumer():
            kernel = yield from queue.pop_wait()
            got.append((sim.now, kernel.kernel_id))

        def producer():
            yield 25
            queue.push(self.make_kernel(9))

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(25, 9)]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            KernelQueue(0)


class TestKernelLibrary:
    def make_spec(self, func5=0, name="k"):
        return KernelSpec(func5=func5, name=name,
                          preamble=lambda req, mm: (None, [], {}),
                          body=lambda kc, k: iter(()))

    def test_register_lookup(self):
        library = KernelLibrary()
        spec = self.make_spec(3)
        library.register(spec)
        assert library.lookup(3) is spec
        assert library.lookup(4) is None
        assert 3 in library and len(library) == 1

    def test_slot_conflict(self):
        library = KernelLibrary()
        library.register(self.make_spec(0, "a"))
        with pytest.raises(ValueError, match="already holds"):
            library.register(self.make_spec(0, "b"))
        library.register(self.make_spec(0, "b"), replace=True)  # reprogrammable
        assert library.lookup(0).name == "b"

    def test_slot_conflict_names_both_kernels(self):
        library = KernelLibrary()
        library.register(self.make_spec(4, "resident"))
        with pytest.raises(ValueError, match="'newcomer'.*'resident'.*replace=True"):
            library.register(self.make_spec(4, "newcomer"))

    def test_func5_range(self):
        library = KernelLibrary()
        with pytest.raises(ValueError, match="outside"):
            library.register(self.make_spec(31))  # xmr slot is reserved
        with pytest.raises(ValueError, match="outside"):
            library.register(self.make_spec(-1))

    def test_names(self):
        library = KernelLibrary()
        library.register(self.make_spec(2, "two"))
        library.register(self.make_spec(1, "one"))
        assert library.names() == {1: "one", 2: "two"}


class TestPhaseBreakdown:
    def test_accumulate_and_fractions(self):
        phases = PhaseBreakdown()
        phases.add("preamble", 10)
        phases.add("compute", 80)
        phases.add("allocation", 5)
        phases.add("writeback", 5)
        assert phases.total == 100
        assert phases.fraction("compute") == 0.8
        assert phases.overhead_fraction() == 0.2
        assert phases.non_compute == 20

    def test_custom_phase_auto_registers(self):
        phases = PhaseBreakdown()
        phases.add("cooldown", 7)
        phases.add("compute", 3)
        assert phases.cycles["cooldown"] == 7
        assert phases.total == 10
        assert phases.non_compute == 7
        assert phases.fraction("cooldown") == 0.7
        # canonical phases stay first in the rendered order
        assert phases.phase_names()[:4] == ("preamble", "allocation",
                                            "compute", "writeback")
        assert "cooldown" in phases.phase_names()

    def test_invalid_phase_name(self):
        with pytest.raises(KeyError):
            PhaseBreakdown().add("", 1)

    def test_merge_with_custom_phase(self):
        a, b = PhaseBreakdown(), PhaseBreakdown()
        b.add("cooldown", 4)
        a.merge(b)
        assert a.cycles["cooldown"] == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PhaseBreakdown().add("compute", -1)

    def test_merge(self):
        a, b = PhaseBreakdown(), PhaseBreakdown()
        a.add("compute", 10)
        b.add("compute", 5)
        b.add("preamble", 1)
        a.merge(b)
        assert a.cycles["compute"] == 15 and a.cycles["preamble"] == 1

    def test_empty_fractions(self):
        assert PhaseBreakdown().overhead_fraction() == 0.0
