"""Tests for the xmnmc custom matrix ISA encoding (paper IV-A, Table I)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.decode import decode
from repro.isa.xmnmc import (
    FUNC5_XMR,
    MAJOR_OPCODE,
    MAX_KERNEL_FUNC5,
    OffloadRequest,
    decode_xmnmc,
    encode_xmk,
    encode_xmr,
    pack_pair,
    request_from_instruction,
    unpack_pair,
)

regs = st.integers(min_value=0, max_value=31)
u16 = st.integers(min_value=0, max_value=0xFFFF)


class TestPairPacking:
    @given(u16, u16)
    def test_roundtrip(self, hi, lo):
        assert unpack_pair(pack_pair(hi, lo)) == (hi, lo)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_pair(0x10000, 0)
        with pytest.raises(ValueError):
            pack_pair(0, -1)


class TestEncoding:
    @given(regs, regs, regs, st.sampled_from(["w", "h", "b"]))
    def test_xmr_roundtrip(self, rs1, rs2, rs3, size):
        word = encode_xmr(size, rs1, rs2, rs3)
        instr = decode_xmnmc(word)
        assert instr.mnemonic == f"xmr.{size}"
        assert instr.operand("func5") == FUNC5_XMR
        assert (instr.rs1, instr.rs2, instr.rs3) == (rs1, rs2, rs3)

    @given(
        st.integers(min_value=0, max_value=MAX_KERNEL_FUNC5),
        regs, regs, regs, st.sampled_from(["w", "h", "b"]),
    )
    def test_xmk_roundtrip(self, n, rs1, rs2, rs3, size):
        word = encode_xmk(n, size, rs1, rs2, rs3)
        instr = decode_xmnmc(word)
        assert instr.mnemonic == f"xmk{n}.{size}"
        assert instr.operand("func5") == n

    def test_major_opcode_is_custom2(self):
        word = encode_xmk(0, "w", 1, 2, 3)
        assert word & 0x7F == MAJOR_OPCODE == 0x5B

    def test_kernel_index_bounds(self):
        with pytest.raises(ValueError):
            encode_xmk(31, "w", 0, 0, 0)  # 31 is reserved for xmr
        with pytest.raises(ValueError):
            encode_xmk(-1, "w", 0, 0, 0)

    def test_bad_size_suffix(self):
        with pytest.raises(ValueError):
            encode_xmr("d", 0, 0, 0)

    def test_unified_decoder_dispatches(self):
        instr = decode(encode_xmk(4, "b", 10, 11, 12))
        assert instr.extension == "xmnmc"
        assert instr.mnemonic == "xmk4.b"


class TestOffloadRequest:
    def test_pairs_follow_table1(self):
        request = OffloadRequest(
            func5=0, size_suffix="w",
            rs1_value=pack_pair(2, 1),       # alpha=2, beta=1
            rs2_value=pack_pair(3, 4),       # ms3=3, md=4
            rs3_value=pack_pair(5, 6),       # ms1=5, ms2=6
        )
        assert request.pairs() == ((2, 1), (3, 4), (5, 6))
        assert request.element_bytes == 4
        assert not request.is_reserve

    def test_xmr_flag(self):
        request = OffloadRequest(func5=FUNC5_XMR, size_suffix="b",
                                 rs1_value=0, rs2_value=0, rs3_value=0)
        assert request.is_reserve
        assert request.element_bytes == 1

    def test_request_from_instruction_samples_registers(self):
        instr = decode(encode_xmk(2, "h", 1, 2, 3))
        request = request_from_instruction(instr, 0xAABB0011, 0x22334455, 0x66778899, 9)
        assert request.func5 == 2
        assert request.size_suffix == "h"
        assert request.rs1_value == 0xAABB0011
        assert request.instr_id == 9

    def test_request_from_wrong_extension_rejected(self):
        instr = decode(0x00000013)  # addi x0, x0, 0
        with pytest.raises(ValueError):
            request_from_instruction(instr, 0, 0, 0)
