"""Fault-tolerant serving tests: injection, retries, quarantine, deadlines."""

import json

import numpy as np
import pytest

from repro.core.config import ArcaneConfig
from repro.serve import (
    FaultInjector,
    FaultPlan,
    GraphNode,
    OnlineDispatcher,
    RequestRejected,
    RetryPolicy,
    ServingEngine,
    SystemWorker,
    WorkerSupervisor,
    expected_output,
    gemm_request,
    kernel_request,
    stamp_arrivals,
    stamp_deadlines,
)
from repro.integrity.inject import CORRUPTION_KINDS
from repro.serve.faults import HEALTHY, PROBATION, QUARANTINED
from repro.serve.traffic import TrafficSpec

CFG = ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=8, main_memory_kib=512)


def gemm_batch(rng, count, shape=(4, 4)):
    return [
        gemm_request(
            rid,
            rng.integers(-5, 5, shape).astype(np.int16),
            rng.integers(-5, 5, (shape[1], shape[0])).astype(np.int16),
        )
        for rid in range(count)
    ]


def strip_wall(record):
    """A report dict minus the wall-clock fields (the only run-to-run noise)."""
    record = dict(record)
    record.pop("wall_seconds")
    record.pop("requests_per_second")
    return record


class TestFaultPlanGrammar:
    def test_parse_round_trips_every_kind(self):
        spec = "kill:0.05,transient:0.1,slow:0.02:4x,crash_worker:2@50"
        plan = FaultPlan.parse(spec)
        assert [c.kind for c in plan.clauses] == [
            "kill", "transient", "slow", "crash_worker"
        ]
        assert plan.describe() == spec
        assert FaultPlan.parse(plan.describe()) == plan

    def test_coerce_accepts_none_string_and_plan(self):
        assert FaultPlan.coerce(None) is None
        plan = FaultPlan.coerce("kill:0.5")
        assert isinstance(plan, FaultPlan)
        assert FaultPlan.coerce(plan) is plan

    @pytest.mark.parametrize("bad", [
        "meteor:0.1",            # unknown kind
        "kill:0",                # probability must be in (0, 1]
        "kill:1.5",
        "slow:0.1:1x",           # factor must be > 1
        "slow:0.1",              # missing factor
        "crash_worker:2",        # missing @<nth>
        "crash_worker:-1@3",     # worker must be >= 0
        "crash_worker:0@0",      # nth is 1-based
        "flip:0",                # corruption probabilities too
        "dma_corrupt:1.5",
        "stuck_line:1",          # missing @<nth>
        "stuck_line:-1@2",
        "stuck_line:0@0",
        "",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_corruption_clauses_round_trip(self):
        spec = "flip:0.01,dma_corrupt:0.02,vrf_flip:0.05,stuck_line:1@3"
        plan = FaultPlan.parse(spec)
        assert [c.kind for c in plan.clauses] == list(CORRUPTION_KINDS)
        assert plan.describe() == spec
        assert FaultPlan.parse(plan.describe()) == plan


class TestInjectorDeterminism:
    def test_draws_depend_only_on_seed_request_attempt(self, rng):
        """The same (seed, request, attempt) must meet the same fate no
        matter which worker runs it or in what order — that is what makes
        offline and online injection identical."""
        plan = FaultPlan.parse("kill:0.3,transient:0.2")
        requests = gemm_batch(rng, 30)

        def fate(injector, request, attempt, worker):
            try:
                injector.before_attempt(request, attempt, worker)
                return "ok"
            except Exception as error:
                return type(error).__name__

        a = FaultInjector(plan, seed=7)
        b = FaultInjector(plan, seed=7)
        fates_fwd = [fate(a, r, 1, 0) for r in requests]
        fates_rev = [fate(b, r, 1, 5) for r in reversed(requests)]
        assert fates_fwd == list(reversed(fates_rev))
        assert any(f != "ok" for f in fates_fwd)  # the plan actually fires

    def test_different_seeds_differ(self, rng):
        plan = FaultPlan.parse("kill:0.5")
        requests = gemm_batch(rng, 40)

        def fates(seed):
            injector = FaultInjector(plan, seed=seed)
            out = []
            for r in requests:
                try:
                    injector.before_attempt(r, 1, 0)
                    out.append(True)
                except Exception:
                    out.append(False)
            return out

        assert fates(1) != fates(2)


class TestCorruptionDrawDeterminism:
    def test_directives_depend_only_on_seed_request_attempt(self, rng):
        """Corruption sites/values hash from (seed, request, attempt,
        site-salt): byte-identical no matter the worker or draw order."""
        plan = FaultPlan.parse("flip:0.6,dma_corrupt:0.6,vrf_flip:0.6")
        requests = gemm_batch(rng, 20)
        a = FaultInjector(plan, seed=11)
        b = FaultInjector(plan, seed=11)
        fwd = [a.corruption_for(r, 1, worker=0) for r in requests]
        rev = [b.corruption_for(r, 1, worker=5) for r in reversed(requests)]
        assert fwd == list(reversed(rev))
        assert any(fwd)  # the plan actually fires
        kinds = {d.kind for directives in fwd for d in directives}
        assert kinds == {"flip", "dma_corrupt", "vrf_flip"}

    def test_attempts_draw_independent_sites(self, rng):
        plan = FaultPlan.parse("flip:1")
        request = gemm_batch(rng, 1)[0]
        injector = FaultInjector(plan, seed=3)
        first = injector.corruption_for(request, 1, worker=0)
        second = injector.corruption_for(request, 2, worker=0)
        assert first and second
        assert first[0].site != second[0].site

    def test_stuck_line_keys_on_worker_run_not_request(self, rng):
        """The stuck cell is a property of the silicon, not the workload:
        the directive fires on worker 0's nth run with the same site for
        any request that happens to trigger it."""
        plan = FaultPlan.parse("stuck_line:0@2")
        requests = gemm_batch(rng, 3)

        def nth_run_site(order):
            injector = FaultInjector(plan, seed=9)
            sites = []
            for request in order:
                injector.before_attempt(request, 1, worker=0)
                sites.extend(
                    d.site for d in injector.corruption_for(request, 1, worker=0)
                )
            return sites

        forward = nth_run_site(requests)
        shuffled = nth_run_site(requests[::-1])
        assert len(forward) == len(shuffled) == 1
        assert forward == shuffled

    def test_legacy_draws_are_pinned_and_unperturbed(self, rng):
        """Satellite regression: adding corruption clauses to a plan must
        not shift the legacy kill/transient/slow draw stream.  The fates
        below are the recorded seed-7 draws for the legacy plan; the
        corruption-augmented plan must reproduce them exactly."""
        expected = [
            "ok", "ok", "TransientOffloadError", "TransientOffloadError",
            "ok", "KernelKilledError", "KernelKilledError", "ok",
            "TransientOffloadError", "KernelKilledError", "KernelKilledError",
            "ok", "ok", "TransientOffloadError", "KernelKilledError", "ok",
            "TransientOffloadError", "ok", "ok", "ok",
        ]
        requests = gemm_batch(rng, 20)

        def fates(spec):
            injector = FaultInjector(FaultPlan.parse(spec), seed=7)
            out = []
            for request in requests:
                try:
                    injector.before_attempt(request, 1, 0)
                    out.append("ok")
                except Exception as error:
                    out.append(type(error).__name__)
            return out

        legacy = "kill:0.3,transient:0.2,slow:0.2:3x"
        augmented = legacy + ",flip:0.9,dma_corrupt:0.9,vrf_flip:0.9,stuck_line:0@1"
        assert fates(legacy) == expected
        assert fates(augmented) == expected


class TestOfflineFaults:
    def test_kill_faults_do_not_abort_the_batch(self, rng):
        """~10% kernel kills, no retries: the batch completes, failures are
        per-request results, and the availability section accounts for them."""
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve(
            gemm_batch(rng, 40), faults="kill:0.1", fault_seed=3,
            retry=RetryPolicy(max_attempts=1),
        )
        assert report.n_requests == 40
        statuses = report.availability["statuses"]
        assert statuses["failed"] > 0
        assert report.success_rate < 1.0
        assert report.success_rate == statuses["ok"] / 40
        by_class = report.availability["failed_attempts_by_class"]
        assert by_class == {"kill": statuses["failed"]}
        assert report.availability["injected_faults"]["kill"] == statuses["failed"]
        for result in report.results:
            if result.status == "failed":
                assert result.output is None
                assert "injected fault" in result.error
                assert result.fault_class == "kill"

    def test_retried_requests_are_bit_exact(self, rng):
        """An injected failure never perturbs the machine: the retry that
        succeeds matches the fault-free run output AND cycle count."""
        requests = gemm_batch(rng, 12)
        clean = ServingEngine(pool_size=2, config=CFG).serve(requests)
        faulty = ServingEngine(pool_size=2, config=CFG).serve(
            requests, faults="kill:0.3", fault_seed=1, verify=True,
        )
        assert faulty.availability["retries"] > 0
        assert any(r.attempts > 1 for r in faulty.results)
        for base, result in zip(clean.results, faulty.results):
            if result.status != "ok":
                continue
            assert np.array_equal(result.output, base.output)
            assert result.sim_cycles == base.sim_cycles

    def test_crash_failover_and_rebuild(self, rng):
        """A crashed worker is rebuilt and the retry fails over elsewhere."""
        engine = ServingEngine(pool_size=2, config=CFG, policy="round_robin")
        report = engine.serve(gemm_batch(rng, 4), faults="crash_worker:0@1")
        assert all(r.status == "ok" for r in report.results)
        crashed = [r for r in report.results if r.attempts > 1]
        assert len(crashed) == 1
        assert crashed[0].worker == 1  # failover away from the crashed worker
        assert "crashed" in crashed[0].error
        assert report.availability["failovers"] >= 1
        assert report.per_worker[0]["rebuilds"] == 1
        assert report.per_worker[1]["rebuilds"] == 0
        assert engine.workers[0].rebuilds == 1

    def test_fault_free_serving_is_unchanged(self, rng):
        """No fault spec: statuses all ok, single attempts, clean report."""
        report = ServingEngine(pool_size=2, config=CFG).serve(
            gemm_batch(rng, 6), verify=True,
        )
        assert all(r.status == "ok" and r.attempts == 1 for r in report.results)
        assert report.faults is None
        assert report.availability["success_rate"] == 1.0
        assert report.availability["retries"] == 0
        assert report.availability["worker_events"] == []

    def test_faults_work_on_multiprocess_pool(self, rng):
        """Fault decisions live in the dispatch core, so injection no
        longer needs the serial pool: same seed, same report."""
        requests = gemm_batch(rng, 4)
        kwargs = dict(faults="kill:0.5", fault_seed=3)
        serial = ServingEngine(pool_size=2, config=CFG).serve(requests, **kwargs)
        engine = ServingEngine(pool_size=2, config=CFG, processes=2)
        try:
            parallel = engine.serve(requests, **kwargs)
        finally:
            engine.close()
        assert parallel.processes == 2
        assert [r.status for r in serial.results] \
            == [r.status for r in parallel.results]
        assert [r.sim_cycles for r in serial.results] \
            == [r.sim_cycles for r in parallel.results]
        assert serial.availability == parallel.availability

    def test_offline_report_is_deterministic(self, rng):
        requests = gemm_batch(rng, 16)
        kwargs = dict(faults="kill:0.2,slow:0.1:3x", fault_seed=9)
        a = ServingEngine(pool_size=2, config=CFG).serve(requests, **kwargs)
        b = ServingEngine(pool_size=2, config=CFG).serve(requests, **kwargs)
        assert strip_wall(a.as_dict()) == strip_wall(b.as_dict())

    @pytest.mark.parametrize(
        "spec",
        ["flip:0.4", "dma_corrupt:0.4", "vrf_flip:0.4", "stuck_line:0@1"],
    )
    def test_corruption_same_seed_reports_are_identical(self, rng, spec):
        """Every corruption clause: same seed, same engine layout ->
        byte-identical reports (sites, values and verdicts included)."""
        requests = gemm_batch(rng, 8)
        kwargs = dict(verify="report", faults=spec, fault_seed=10)
        a = ServingEngine(pool_size=2, config=CFG, integrity="abft").serve(
            requests, **kwargs)
        b = ServingEngine(pool_size=2, config=CFG, integrity="abft").serve(
            requests, **kwargs)
        assert strip_wall(a.as_dict()) == strip_wall(b.as_dict())
        for x, y in zip(a.results, b.results):
            assert x.status == y.status and x.integrity == y.integrity
            assert (x.output is None) == (y.output is None)
            if x.output is not None:
                assert np.array_equal(x.output, y.output)

    def test_corruption_serial_matches_multiprocess(self, rng):
        """Corruption draws live in the dispatch core and detection in the
        workers' deterministic checks, so a partitioned pool reproduces
        the serial run bit-for-bit — clauses combined to cover all four."""
        requests = gemm_batch(rng, 8)
        kwargs = dict(
            verify="report", fault_seed=10,
            faults="flip:0.3,dma_corrupt:0.3,vrf_flip:0.3,stuck_line:0@2",
        )
        serial = ServingEngine(pool_size=2, config=CFG, integrity="abft").serve(
            requests, **kwargs)
        engine = ServingEngine(
            pool_size=2, config=CFG, processes=2, integrity="abft")
        try:
            parallel = engine.serve(requests, **kwargs)
        finally:
            engine.close()
        a, b = strip_wall(serial.as_dict()), strip_wall(parallel.as_dict())
        for record in (a, b):
            record.pop("processes")
            record.pop("requested_processes")
        assert a == b
        for x, y in zip(serial.results, parallel.results):
            assert x.status == y.status
            if x.output is not None:
                assert np.array_equal(x.output, y.output)

    def test_flip_sites_are_mode_independent(self, rng):
        """Flip draws hash from (seed, request, attempt) only, so offline
        and online serving corrupt the same bits and reach the same
        verdicts.  The replay fast path is off here: a replay hit would
        mask a flip's manifestation, and the two modes warm the caches in
        different orders (sites still match; detection might not)."""
        nofast = ArcaneConfig(
            n_vpus=2, lanes=4, line_bytes=256, vpu_kib=8,
            main_memory_kib=512, fastpath=False,
        )
        requests = gemm_batch(rng, 8)
        offline = ServingEngine(pool_size=2, config=nofast, integrity="abft").serve(
            requests, verify="report", faults="flip:0.5", fault_seed=3)
        online = ServingEngine(pool_size=2, config=nofast, integrity="abft").serve_online(
            requests, traffic="bursty:8:0", verify="report",
            faults="flip:0.5", fault_seed=3)
        assert offline.integrity["injected"] == online.integrity["injected"]
        assert offline.integrity["detected"] == online.integrity["detected"]
        for x, y in zip(offline.results, online.results):
            assert x.status == y.status
            flips = lambda r: [
                (e["kind"], e.get("bit"), e.get("address"))
                for e in (r.integrity or {}).get("events", [])
            ]
            assert flips(x) == flips(y)
            if x.output is not None:
                assert np.array_equal(x.output, y.output)


class TestOnlineFaults:
    def test_kill_under_poisson_completes_and_retries_reenter_queue(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve_online(
            gemm_batch(rng, 20), traffic="poisson:25", seed=7,
            faults="kill:0.3", fault_seed=1, verify=True,
        )
        assert report.n_requests == 20
        assert report.availability["retries"] > 0
        retried = [r for r in report.results if r.status == "ok" and r.attempts > 1]
        assert retried
        policy = RetryPolicy()
        for result in retried:
            # a retry re-enters the admission queue after simulated backoff,
            # so its service cannot start before arrival + first backoff
            assert result.start_cycle >= result.arrival_cycle + policy.backoff(1)

    def test_online_fail_retry_events_interleave(self, rng):
        workers = [SystemWorker(i, CFG) for i in range(2)]
        plan = FaultPlan.parse("kill:0.3")
        dispatcher = OnlineDispatcher(
            workers, injector=FaultInjector(plan, seed=1),
            supervisor=WorkerSupervisor(2),
        )
        requests = stamp_arrivals(
            gemm_batch(rng, 12), TrafficSpec.parse("uniform:100:2000"), seed=3)
        results = dispatcher.run(requests)
        kinds = {e.kind for e in dispatcher.events}
        assert {"arrival", "dispatch", "completion", "fail", "retry"} <= kinds
        assert dispatcher.tally["retries"] == sum(
            r.attempts - 1 for r in results)
        fails = [e for e in dispatcher.events if e.kind == "fail"]
        assert all(e.worker is not None for e in fails)

    def test_quarantine_skip_probation_reinstate(self, rng):
        """Three consecutive crashes quarantine worker 1; the dispatcher
        routes around it, then probation reinstates it on a clean request."""
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve_online(
            gemm_batch(rng, 12), traffic="bursty:12:0",
            faults="crash_worker:1@1,crash_worker:1@2,crash_worker:1@3",
        )
        assert all(r.status == "ok" for r in report.results)
        events = [e["event"] for e in report.availability["worker_events"]]
        assert "quarantined" in events
        assert "probation" in events
        assert "reinstated" in events
        assert events.index("quarantined") < events.index("probation")
        assert events.index("probation") < events.index("reinstated")
        assert all(e["worker"] == 1
                   for e in report.availability["worker_events"])
        assert engine.workers[1].rebuilds == 3  # one rebuild per crash
        # worker 1 came back and served real work after reinstatement
        assert report.per_worker[1]["served"] > 0

    def test_quarantined_worker_is_skipped(self):
        supervisor = WorkerSupervisor(2, threshold=1, quarantine_for=2)
        error = RequestRejected("boom")
        assert supervisor.record_failure(1, 0, error) is True
        assert supervisor.state_of(1) == QUARANTINED
        assert supervisor.available(1) == [0]
        supervisor.tick(2)
        supervisor.tick(3)
        assert supervisor.state_of(1) == PROBATION
        assert supervisor.available(4) == [0, 1]
        supervisor.record_success(1, 5)
        assert supervisor.state_of(1) == HEALTHY

    def test_all_quarantined_forces_probation(self):
        supervisor = WorkerSupervisor(2, threshold=1)
        error = RequestRejected("boom")
        supervisor.record_failure(0, 0, error)
        supervisor.record_failure(1, 0, error)
        assert supervisor.available(1) == [0, 1]  # forced release, no deadlock
        assert all(h.state == PROBATION for h in supervisor.health)

    def test_deadline_ok_timed_out_shed(self, rng):
        """Pool of one, three identical simultaneous arrivals, budget just
        over one service time: first completes, second finishes late,
        third is shed before it burns cycles."""
        requests = gemm_batch(rng, 3)
        requests = [r for r in requests]
        clean = ServingEngine(pool_size=1, config=CFG).serve([requests[0]])
        service = clean.results[0].sim_cycles
        assert service > 10
        stamped = stamp_deadlines(
            stamp_arrivals(requests, TrafficSpec.parse("bursty:3:0")),
            budget_cycles=service + 10,
        )
        report = ServingEngine(pool_size=1, config=CFG).serve_online(stamped)
        statuses = [r.status for r in report.results]
        assert statuses == ["ok", "timed_out", "shed"]
        timed_out = report.results[1]
        assert timed_out.output is not None  # late but kept
        assert timed_out.completion_cycle > stamped[1].deadline_cycle
        shed = report.results[2]
        assert shed.fault_class == "deadline"
        assert shed.sim_cycles == 0
        assert report.availability["statuses"] == {
            "ok": 1, "failed": 0, "timed_out": 1, "shed": 1}
        # latency stats cover completed requests only
        assert report.makespan_cycles == timed_out.completion_cycle

    def test_bounded_queue_sheds_excess_arrivals(self, rng):
        report = ServingEngine(pool_size=1, config=CFG).serve_online(
            gemm_batch(rng, 4), traffic="bursty:4:0", queue_capacity=1,
        )
        statuses = [r.status for r in report.results]
        assert statuses == ["ok", "ok", "shed", "shed"]
        for result in report.results[2:]:
            assert result.fault_class == "queue_full"
            assert "queue full" in result.error

    def test_online_report_is_deterministic(self, rng):
        """Same (traffic seed, fault seed) -> identical reports, including
        availability and worker events."""
        requests = gemm_batch(rng, 16)
        kwargs = dict(traffic="poisson:25", seed=7,
                      faults="kill:0.2,transient:0.1,slow:0.1:2x", fault_seed=5)
        a = ServingEngine(pool_size=2, config=CFG).serve_online(requests, **kwargs)
        b = ServingEngine(pool_size=2, config=CFG).serve_online(requests, **kwargs)
        assert strip_wall(a.as_dict()) == strip_wall(b.as_dict())
        assert json.loads(a.to_json())["availability"] is not None

    def test_slow_fault_stretches_timeline_not_numerics(self, rng):
        requests = gemm_batch(rng, 6)
        clean = ServingEngine(pool_size=1, config=CFG).serve_online(
            requests, traffic="trace:0,0,0,0,0,0")
        slowed = ServingEngine(pool_size=1, config=CFG).serve_online(
            requests, traffic="trace:0,0,0,0,0,0",
            faults="slow:1.0:4x", verify=True,  # every request spiked 4x
        )
        assert slowed.availability["injected_faults"]["slow"] == 6
        for base, spiked in zip(clean.results, slowed.results):
            assert np.array_equal(base.output, spiked.output)
            assert spiked.sim_cycles == int(round(base.sim_cycles * 4.0))
            # the RunReports keep the machine's true cycle count
            assert sum(r.total_cycles for r in spiked.reports) == base.sim_cycles


class TestWorkerRecovery:
    def test_organic_failure_counts_a_recovery(self, rng):
        worker = SystemWorker(0, CFG)
        bad = kernel_request(0, 30, [np.zeros((4, 4), dtype=np.int16)], (4, 4))
        with pytest.raises(RequestRejected):
            worker.run(bad)  # slot 30 unregistered -> offload killed
        assert worker.health_snapshot() == {
            "failures": 1, "recoveries": 1, "rebuilds": 0}
        assert worker.last_recovery == {"via": "reset", "error": None}
        good = gemm_request(
            1,
            rng.integers(-5, 5, (4, 4)).astype(np.int16),
            rng.integers(-5, 5, (4, 4)).astype(np.int16),
        )
        result = worker.run(good)
        assert np.array_equal(result.output, expected_output(good))
        assert worker.failures == 1  # success does not touch the counters

    def test_nonretryable_failure_is_terminal_with_recovery_counted(self, rng):
        engine = ServingEngine(pool_size=1, config=CFG)
        bad = kernel_request(0, 30, [np.zeros((4, 4), dtype=np.int16)], (4, 4))
        report = engine.serve([bad])
        result = report.results[0]
        assert result.status == "failed"
        assert result.fault_class == "rejected"
        assert result.attempts == 1  # RequestRejected is not retryable
        assert report.per_worker[0]["recoveries"] == 1
        assert report.availability["failed_attempts_by_class"] == {"rejected": 1}


class TestRequestValidation:
    @pytest.mark.parametrize("shape", [(0, 4), (4, -1), (4,), (2, 3, 4), "bad"])
    def test_kernel_request_rejects_bad_out_shape(self, shape):
        with pytest.raises(ValueError, match="out_shape"):
            kernel_request(0, 1, [np.zeros((4, 4), dtype=np.int16)], shape)

    def test_graph_node_rejects_bad_out_shape(self):
        with pytest.raises(ValueError, match="out_shape"):
            GraphNode("n", 1, ("a",), (4, 0))

    def test_valid_shapes_are_normalised_to_int_tuples(self):
        node = GraphNode("n", 1, ("a",), (np.int64(4), np.int64(2)))
        assert node.out_shape == (4, 2)
        assert all(isinstance(d, int) for d in node.out_shape)


class TestVerifyCollectsAllMismatches:
    def test_every_failing_request_is_reported(self, rng):
        engine = ServingEngine(pool_size=1, config=CFG)
        requests = gemm_batch(rng, 3)
        report = engine.serve(requests)
        results = report.results
        results[0].output = results[0].output + 7   # corrupt two of three
        results[2].output = results[2].output - 1
        with pytest.raises(AssertionError) as excinfo:
            ServingEngine._verify_outputs(requests, results)
        message = str(excinfo.value)
        assert "2 request(s) mismatch" in message
        assert "request 0" in message and "request 2" in message
        assert "request 1" not in message
        assert "max |diff| = 7" in message

    def test_failed_results_are_skipped(self, rng):
        engine = ServingEngine(pool_size=1, config=CFG)
        requests = gemm_batch(rng, 2)
        report = engine.serve(
            requests, retry=RetryPolicy(max_attempts=1), faults="kill:1",
        )
        assert all(r.status == "failed" for r in report.results)
        assert ServingEngine._verify_outputs(requests, report.results) is True
