"""Lifecycle tests: one ArcaneSystem serving many programs back-to-back.

The regression battery for the serving engine's foundation: heap
recycling (free list + epoch reset), per-run report isolation (stats and
breakdowns), and cache coherence across reuse (no stale lines aliasing a
reallocated address).
"""

import numpy as np
import pytest

from repro.baselines.reference import ref_conv_layer, ref_leaky_relu
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem

CFG = ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=8, main_memory_kib=192)


def conv_operands(rng):
    x = rng.integers(-8, 8, (3 * 12, 12)).astype(np.int8)
    f = rng.integers(-2, 3, (9, 3)).astype(np.int8)
    return x, f


class TestBackToBackPrograms:
    def test_three_runs_bit_exact_with_single_shot(self, rng):
        """≥3 programs on one system: results, cycles and stats all match a
        fresh system's single-shot run after each reset."""
        x, f = conv_operands(rng)
        reference = ArcaneSystem(CFG)
        out_ref, rep_ref = reference.run_conv_layer(x, f)

        system = ArcaneSystem(CFG)
        for i in range(3):
            out, report = system.run_conv_layer(x, f)
            assert np.array_equal(out, out_ref), f"run {i} output differs"
            assert report.total_cycles == rep_ref.total_cycles, f"run {i} cycles differ"
            assert report.stats == rep_ref.stats, f"run {i} stats differ"
            system.reset_heap()

    def test_heap_does_not_grow_across_resets(self, rng):
        """The old bump-only allocator leaked until MemoryError; with resets
        a small memory map survives far more programs than it could hold."""
        x, f = conv_operands(rng)
        system = ArcaneSystem(CFG)
        for _ in range(40):  # 40 * (3 matrices) would blow a 192 KiB map
            system.run_conv_layer(x, f)
            system.reset_heap()
        assert system.heap_stats() == {
            "live_matrices": 0, "live_bytes": 0, "free_bytes": 0, "heap_bytes": 0,
        }

    def test_exhaustion_without_reset_still_raises(self, rng):
        """No silent wrap-around: a leaking caller still gets MemoryError,
        now with a hint at the reclamation API."""
        system = ArcaneSystem(CFG)
        with pytest.raises(MemoryError, match="reset_heap"):
            for _ in range(10_000):
                system.alloc_matrix((16, 16), np.int32)

    def test_per_run_breakdown_isolated(self, rng):
        """Each report covers only its own kernels, run after run."""
        x, f = conv_operands(rng)
        system = ArcaneSystem(CFG)
        for _ in range(3):
            _, report = system.run_conv_layer(x, f)
            assert len(report.per_kernel) == 1  # exactly this run's xmk4
            assert report.stats["scheduler.kernels"] == 1  # per-run delta
            assert report.breakdown.cycles["compute"] > 0
            system.reset_heap()

    def test_read_matrix_coherent_after_reuse(self, rng):
        """A reallocated address must not serve another run's stale lines."""
        system = ArcaneSystem(CFG)
        first = rng.integers(-9, 9, (4, 16)).astype(np.int32)
        handle = system.place_matrix(first)
        # a host read pulls a line over the block: without invalidation on
        # reset, the next run's read would be served this stale data
        system.sim.run_process(system.llc.controller.host_read(handle.address, 4))
        assert np.array_equal(system.read_matrix(handle), first)
        address = handle.address
        system.reset_heap()
        second = rng.integers(-9, 9, (4, 16)).astype(np.int32)
        handle2 = system.place_matrix(second)
        assert handle2.address == address  # same block recycled
        assert np.array_equal(system.read_matrix(handle2), second)

    def test_reset_refused_mid_flight(self, rng):
        """Resetting under queued kernels would free live operands."""
        system = ArcaneSystem(CFG)
        x = system.place_matrix(rng.integers(-4, 4, (4, 8)).astype(np.int32))
        out = system.alloc_matrix((4, 8), np.int32)
        prog = system.program()
        prog.xmr(0, x).xmr(1, out)
        prog.leaky_relu(dest=1, src=0, alpha=0)

        captured = {}

        def meddle():
            outcome = yield from system.llc.bridge.offload(prog._ops[0][1][0])
            yield from system.llc.bridge.offload(prog._ops[1][1][0])
            yield from system.llc.bridge.offload(prog._ops[2][1][0])
            try:
                system.reset_heap()
            except RuntimeError as error:
                captured["error"] = error

        system.sim.process(meddle())
        system.sim.run()
        system.sim.run_process(system.llc.runtime.drain())
        assert "error" in captured
        assert "pending" in str(captured["error"])


class TestFreeMatrix:
    def test_free_list_reuses_block(self, rng):
        system = ArcaneSystem(CFG)
        a = system.place_matrix(rng.integers(-4, 4, (8, 16)).astype(np.int32))
        address = a.address
        system.free_matrix(a)
        fresh = rng.integers(-4, 4, (8, 16)).astype(np.int32)
        b = system.place_matrix(fresh)
        assert b.address == address  # first fit found the freed block
        assert np.array_equal(system.read_matrix(b), fresh)

    def test_double_free_rejected(self, rng):
        system = ArcaneSystem(CFG)
        a = system.place_matrix(rng.integers(-4, 4, (4, 4)).astype(np.int16))
        system.free_matrix(a)
        with pytest.raises(ValueError, match="not a live allocation"):
            system.free_matrix(a)

    def test_stale_handle_cannot_free_recycled_address(self, rng):
        """Regression: freeing an old handle whose address was reused must
        not free (and corrupt) the live matrix now occupying it."""
        system = ArcaneSystem(CFG)
        first = system.place_matrix(rng.integers(-4, 4, (4, 16)).astype(np.int32))
        system.free_matrix(first)
        current = rng.integers(-4, 4, (4, 16)).astype(np.int32)
        second = system.place_matrix(current)
        assert second.address == first.address  # address recycled
        with pytest.raises(ValueError, match="stale"):
            system.free_matrix(first)  # allocation id no longer matches
        # the live matrix is untouched and still freeable
        assert np.array_equal(system.read_matrix(second), current)
        system.free_matrix(second)

    def test_coalescing_retracts_bump_pointer(self, rng):
        system = ArcaneSystem(CFG)
        base_stats = system.heap_stats()
        matrices = [
            system.place_matrix(rng.integers(-4, 4, (4, 16)).astype(np.int32))
            for _ in range(4)
        ]
        for matrix in matrices:  # free in allocation order: coalesce + retract
            system.free_matrix(matrix)
        assert system.heap_stats() == base_stats

    def test_freed_region_dropped_from_cache(self, rng):
        """Freeing must invalidate covering lines, not write them back."""
        system = ArcaneSystem(CFG)
        data = rng.integers(-9, 9, (4, 16)).astype(np.int32)
        a = system.place_matrix(data)
        # a host read misses and refills, leaving a line over the block
        system.sim.run_process(system.llc.controller.host_read(a.address, 4))
        assert system.llc.cache_table.lookup(a.address) is not None
        system.free_matrix(a)
        assert system.llc.cache_table.lookup(a.address) is None

    def test_free_refused_while_kernel_pending(self, rng):
        """Freeing a queued kernel's operand would recycle it mid-compute."""
        system = ArcaneSystem(CFG)
        x = system.place_matrix(rng.integers(-4, 4, (4, 8)).astype(np.int32))
        out = system.alloc_matrix((4, 8), np.int32)
        prog = system.program()
        prog.xmr(0, x).xmr(1, out)
        prog.leaky_relu(dest=1, src=0, alpha=0)

        captured = {}

        def meddle():
            for _, args in prog._ops:
                yield from system.llc.bridge.offload(args[0])
            try:
                system.free_matrix(x)
            except RuntimeError as error:
                captured["error"] = error

        system.sim.process(meddle())
        system.sim.run()
        assert "pending" in str(captured["error"])

    def test_interleaved_compute_with_free(self, rng):
        """Free + reallocate between programs; kernel results stay exact."""
        system = ArcaneSystem(CFG)
        for i in range(3):
            x = rng.integers(-50, 50, (4, 8)).astype(np.int32)
            mx = system.place_matrix(x)
            out = system.alloc_matrix(x.shape, np.int32)
            with system.program() as prog:
                prog.xmr(0, mx).xmr(1, out)
                prog.leaky_relu(dest=1, src=0, alpha=1)
            assert np.array_equal(system.read_matrix(out), ref_leaky_relu(x, 1))
            system.free_matrix(mx)
            system.free_matrix(out)
