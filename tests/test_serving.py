"""Serving engine tests: scheduling, bit-exactness, parallelism, reports."""

import dataclasses
import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.compiler import FUNC5_CGEMM, FUNC5_EWISE_ADD, FUNC5_FC, FUNC5_ROWSUM
from repro.core.config import ArcaneConfig
from repro.eval.serving import build_serving_report, latency_stats, percentile
from repro.serve import (
    GraphNode,
    InferenceRequest,
    OnlineDispatcher,
    ServingEngine,
    SystemWorker,
    TrafficSpec,
    arrival_cycles,
    conv_layer_request,
    expected_output,
    gemm_request,
    graph_request,
    kernel_request,
    stamp_arrivals,
)

CFG = ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=8, main_memory_kib=512)


def mixed_requests(rng, count):
    requests = []
    for rid in range(count):
        slot = rid % 4
        if slot == 0:
            x = rng.integers(-8, 8, (3 * 12, 12)).astype(np.int8)
            f = rng.integers(-2, 3, (9, 3)).astype(np.int8)
            requests.append(conv_layer_request(rid, x, f))
        elif slot == 1:
            a = rng.integers(-5, 5, (6, 8)).astype(np.int16)
            b = rng.integers(-5, 5, (8, 10)).astype(np.int16)
            c = rng.integers(-5, 5, (6, 10)).astype(np.int16)
            requests.append(gemm_request(rid, a, b, c, alpha=2, beta=-1))
        elif slot == 2:
            xv = rng.integers(-8, 8, (1, 32)).astype(np.int16)
            w = rng.integers(-8, 8, (32, 12)).astype(np.int16)
            bias = rng.integers(-8, 8, (1, 12)).astype(np.int16)
            requests.append(kernel_request(rid, FUNC5_FC, [xv, w, bias], (1, 12)))
        else:
            a = rng.integers(-4, 4, (4, 6)).astype(np.int16)
            b = rng.integers(-4, 4, (6, 4)).astype(np.int16)
            c = np.zeros((4, 4), dtype=np.int16)
            d = rng.integers(-4, 4, (4, 4)).astype(np.int16)
            nodes = [
                GraphNode("prod", FUNC5_CGEMM, ("a", "b", "c"), (4, 4), params=(1, 0)),
                GraphNode("sum", FUNC5_EWISE_ADD, ("prod", "d"), (4, 4)),
                GraphNode("row", FUNC5_ROWSUM, ("sum",), (4, 1)),
            ]
            requests.append(
                graph_request(rid, {"a": a, "b": b, "c": c, "d": d}, nodes)
            )
    return requests


class TestEngineServing:
    def test_mixed_batch_verified_on_pool_of_two(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        requests = mixed_requests(rng, 12)
        report = engine.serve(requests, verify=True)
        assert report.verified is True
        assert report.n_requests == 12
        assert sum(report.per_kind.values()) == 12
        assert len(report.per_worker) == 2  # both systems actually served
        assert report.total_sim_cycles > 0
        # results arrive in request order
        assert [r.request_id for r in report.results] == list(range(12))

    def test_results_bit_exact_with_single_shot(self, rng):
        """Each pooled result must match a fresh system's single-shot run —
        outputs AND cycle counts (cold-start equivalence after reset)."""
        engine = ServingEngine(pool_size=2, config=CFG)
        requests = mixed_requests(rng, 8)
        report = engine.serve(requests)
        for request, result in zip(requests, report.results):
            single = SystemWorker(99, CFG).run(request)
            assert np.array_equal(single.output, result.output)
            assert single.sim_cycles == result.sim_cycles

    def test_outputs_match_golden_models(self, rng):
        engine = ServingEngine(pool_size=3, config=CFG)
        requests = mixed_requests(rng, 8)
        report = engine.serve(requests)
        for request, result in zip(requests, report.results):
            assert np.array_equal(result.output, expected_output(request))

    def test_round_robin_policy(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG, policy="round_robin")
        report = engine.serve(mixed_requests(rng, 6), verify=True)
        workers = [r.worker for r in report.results]
        assert workers == [0, 1, 0, 1, 0, 1]

    def test_parallel_processes_match_serial(self, rng):
        requests = mixed_requests(rng, 8)
        serial = ServingEngine(pool_size=2, config=CFG).serve(requests)
        parallel = ServingEngine(pool_size=2, config=CFG, processes=2).serve(requests)
        for s, p in zip(serial.results, parallel.results):
            assert np.array_equal(s.output, p.output)
            assert s.sim_cycles == p.sim_cycles
            assert s.worker == p.worker
        assert serial.makespan_cycles == parallel.makespan_cycles

    def test_duplicate_request_ids_rejected(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        a = rng.integers(-5, 5, (4, 4)).astype(np.int16)
        b = rng.integers(-5, 5, (4, 4)).astype(np.int16)
        with pytest.raises(ValueError, match="duplicate request_id"):
            engine.serve([gemm_request(1, a, b), gemm_request(1, a, b)])

    def test_long_lived_pool_survives_many_requests(self, rng):
        """The acceptance-criteria scenario, sized for the test suite: one
        pool, many requests, no MemoryError, no deadlock."""
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve(mixed_requests(rng, 40), verify=True)
        assert report.n_requests == 40
        for worker in engine.workers:
            assert worker.system.heap_stats()["live_matrices"] == 0


class TestRequestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            InferenceRequest(0, "sorting", {})

    def test_graph_undefined_tensor_rejected(self, rng):
        a = rng.integers(-4, 4, (4, 4)).astype(np.int16)
        nodes = [GraphNode("out", FUNC5_EWISE_ADD, ("a", "missing"), (4, 4))]
        with pytest.raises(ValueError, match="undefined tensors"):
            graph_request(0, {"a": a}, nodes)

    def test_graph_duplicate_tensor_rejected(self, rng):
        a = rng.integers(-4, 4, (4, 4)).astype(np.int16)
        nodes = [GraphNode("a", FUNC5_ROWSUM, ("a",), (4, 1))]
        with pytest.raises(ValueError, match="defined twice"):
            graph_request(0, {"a": a}, nodes)

    def test_graph_bad_output_rejected(self, rng):
        a = rng.integers(-4, 4, (4, 4)).astype(np.int16)
        nodes = [GraphNode("out", FUNC5_ROWSUM, ("a",), (4, 1))]
        with pytest.raises(ValueError, match="not produced"):
            graph_request(0, {"a": a}, nodes, output="elsewhere")


class TestServingReport:
    def test_json_round_trip(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve(mixed_requests(rng, 6), verify=True)
        decoded = json.loads(report.to_json())
        assert decoded["n_requests"] == 6
        assert decoded["pool_size"] == 2
        assert decoded["verified"] is True
        assert decoded["requests_per_second"] > 0
        assert decoded["cycles_per_request"] > 0
        assert set(decoded["latency_cycles"]) == {
            "min", "mean", "p50", "p90", "p99", "max",
        }

    def test_latency_percentiles_ordered(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve(mixed_requests(rng, 10))
        lat = report.latency_cycles
        assert lat["min"] <= lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]
        assert report.makespan_cycles <= report.total_sim_cycles

    def test_percentile_function(self):
        values = [10, 20, 30, 40]
        assert percentile(values, 0) == 10
        assert percentile(values, 100) == 40
        assert percentile(values, 50) == 25.0
        assert percentile([], 50) == 0.0
        assert percentile([7], 99) == 7.0


class TestWorkerLifecycle:
    def test_worker_resets_between_requests(self, rng):
        worker = SystemWorker(0, CFG)
        for rid in range(3):
            request = gemm_request(
                rid,
                rng.integers(-5, 5, (6, 8)).astype(np.int16),
                rng.integers(-5, 5, (8, 10)).astype(np.int16),
            )
            result = worker.run(request)
            assert np.array_equal(result.output, expected_output(request))
            assert worker.system.heap_stats()["live_matrices"] == 0
        assert worker.served == 3
        assert worker.busy_cycles > 0

    def test_worker_resets_even_on_failure(self, rng):
        from repro.serve import RequestRejected

        worker = SystemWorker(0, CFG)
        bad = kernel_request(0, 30, [np.zeros((4, 4), dtype=np.int16)], (4, 4))
        with pytest.raises(RequestRejected, match="killed"):
            worker.run(bad)  # slot 30 is unregistered -> offload killed
        # the system is still clean and serviceable
        assert worker.system.heap_stats()["live_matrices"] == 0
        good = gemm_request(
            1,
            rng.integers(-5, 5, (4, 4)).astype(np.int16),
            rng.integers(-5, 5, (4, 4)).astype(np.int16),
        )
        result = worker.run(good)
        assert np.array_equal(result.output, expected_output(good))


class TestReportInvariants:
    """The conservation laws a serving report must satisfy in any mode."""

    def test_total_cycles_is_sum_of_per_request_cycles(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve(mixed_requests(rng, 8))
        assert report.total_sim_cycles == sum(r.sim_cycles for r in report.results)

    def test_offline_makespan_bounds(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve(mixed_requests(rng, 8))
        # the slowest worker's pile is at least the largest single request
        # and at most all the work
        assert report.makespan_cycles >= max(r.sim_cycles for r in report.results)
        assert report.makespan_cycles <= report.total_sim_cycles
        busy = sum(w["busy_cycles"] for w in report.per_worker.values())
        assert busy == report.total_sim_cycles

    def test_per_worker_utilization_bounded(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve(mixed_requests(rng, 8))
        for stats in report.per_worker.values():
            assert 0.0 < stats["utilization"] <= 1.0

    def test_idle_workers_still_reported(self, rng):
        """A pool slot that served nothing must show up with served=0 and
        0% utilization, not vanish from the record."""
        a = rng.integers(-5, 5, (4, 6)).astype(np.int16)
        b = rng.integers(-5, 5, (6, 4)).astype(np.int16)
        engine = ServingEngine(pool_size=3, config=CFG)
        report = engine.serve([gemm_request(0, a, b)])
        assert set(report.per_worker) == {0, 1, 2}
        idle = [w for w, s in report.per_worker.items() if s["served"] == 0]
        assert len(idle) == 2
        for w in idle:
            assert report.per_worker[w]["busy_cycles"] == 0
            assert report.per_worker[w]["utilization"] == 0.0

    def test_latency_stats_empty_and_single_sample(self):
        empty = latency_stats([])
        assert all(empty[k] == 0.0 for k in ("min", "mean", "p50", "p90", "p99", "max"))
        single = latency_stats([42])
        assert all(single[k] == 42.0 for k in ("min", "mean", "p50", "p90", "p99", "max"))

    def test_empty_result_report(self):
        report = build_serving_report([], pool_size=2, processes=1,
                                      policy="least_loaded", wall_seconds=0.0)
        assert report.n_requests == 0
        assert report.total_sim_cycles == 0
        assert report.makespan_cycles == 0
        assert report.requests_per_megacycle == 0.0
        assert report.latency_cycles["p99"] == 0.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown serving mode"):
            build_serving_report([], 1, 1, "least_loaded", 0.0, mode="sideways")

    def test_online_report_requires_timelines(self, rng):
        engine = ServingEngine(pool_size=1, config=CFG)
        offline = engine.serve(mixed_requests(rng, 2))
        with pytest.raises(ValueError, match="needs simulated timelines"):
            build_serving_report(offline.results, 1, 1, "least_loaded", 0.0,
                                 mode="online")


class TestTraffic:
    def test_parse_round_trips(self):
        for text in ("poisson:25", "uniform:100:5000", "bursty:8:200000",
                     "trace:0,500,500,9000"):
            spec = TrafficSpec.parse(text)
            assert spec.describe() == text
            assert TrafficSpec.parse(spec.describe()) == spec

    def test_bad_specs_rejected(self):
        for text in ("gaussian:5", "poisson:0", "poisson:-3", "poisson:1:2",
                     "uniform:5", "uniform:9:3", "bursty:0:100", "trace:",
                     "poisson:abc"):
            with pytest.raises(ValueError):
                TrafficSpec.parse(text)

    def test_trace_must_be_non_decreasing(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TrafficSpec("trace", (0, 500, 400))
        with pytest.raises(ValueError, match="non-negative"):
            TrafficSpec("trace", (-1, 500))

    def test_arrival_cycles_deterministic_per_seed(self):
        spec = TrafficSpec.parse("poisson:25")
        assert arrival_cycles(spec, 20, seed=7) == arrival_cycles(spec, 20, seed=7)
        assert arrival_cycles(spec, 20, seed=7) != arrival_cycles(spec, 20, seed=8)

    def test_arrival_cycles_non_decreasing(self):
        for text in ("poisson:25", "uniform:0:1000", "bursty:4:500"):
            cycles = arrival_cycles(TrafficSpec.parse(text), 50, seed=3)
            assert len(cycles) == 50
            assert all(b >= a for a, b in zip(cycles, cycles[1:]))
            assert all(c >= 0 for c in cycles)

    def test_bursty_pattern(self):
        cycles = arrival_cycles(TrafficSpec.parse("bursty:3:1000"), 8)
        assert cycles == [0, 0, 0, 1000, 1000, 1000, 2000, 2000]

    def test_uniform_gaps_within_bounds(self):
        cycles = arrival_cycles(TrafficSpec.parse("uniform:10:20"), 30, seed=1)
        gaps = [b - a for a, b in zip([0] + cycles, cycles)]
        assert all(10 <= g <= 20 for g in gaps)

    def test_trace_replay_and_exhaustion(self):
        spec = TrafficSpec.parse("trace:0,500,9000")
        assert arrival_cycles(spec, 2) == [0, 500]
        with pytest.raises(ValueError, match="trace has 3 arrivals"):
            arrival_cycles(spec, 4)

    def test_stamp_arrivals_copies_not_mutates(self, rng):
        a = rng.integers(-5, 5, (4, 4)).astype(np.int16)
        b = rng.integers(-5, 5, (4, 4)).astype(np.int16)
        originals = [gemm_request(0, a, b), gemm_request(1, a, b)]
        stamped = stamp_arrivals(originals, TrafficSpec.parse("trace:100,200"))
        assert [r.arrival_cycle for r in stamped] == [100, 200]
        assert all(r.arrival_cycle == 0 for r in originals)
        assert [r.request_id for r in stamped] == [0, 1]

    def test_negative_arrival_cycle_rejected(self, rng):
        a = rng.integers(-5, 5, (4, 4)).astype(np.int16)
        request = gemm_request(0, a, a)
        with pytest.raises(ValueError, match="arrival_cycle"):
            dataclasses.replace(request, arrival_cycle=-5)


class TestTrafficEdgeCases:
    """Boundary shapes the arrival processes must survive."""

    def test_bursty_burst_larger_than_batch(self, rng):
        # burst 8 but only 3 requests: one incomplete burst, all at cycle 0
        assert arrival_cycles(TrafficSpec.parse("bursty:8:100"), 3) == [0, 0, 0]
        report = ServingEngine(pool_size=2, config=CFG).serve_online(
            mixed_requests(rng, 3), traffic="bursty:8:100", verify=True)
        assert all(r.arrival_cycle == 0 for r in report.results)
        assert all(r.status == "ok" for r in report.results)

    def test_trace_with_exactly_n_arrivals(self, rng):
        # the == boundary of the trace-exhaustion check: no error, all used
        report = ServingEngine(pool_size=1, config=CFG).serve_online(
            mixed_requests(rng, 3), traffic="trace:0,500,9000", verify=True)
        assert [r.arrival_cycle for r in report.results] == [0, 500, 9000]

    def test_high_rate_poisson_collapses_gaps_to_zero(self, rng):
        # mean gap = 1e6/rate < 1 cycle: int() truncation makes most gaps 0,
        # so arrivals pile onto the same cycle — still non-decreasing, and
        # FIFO admission must break those ties by submission order
        cycles = arrival_cycles(TrafficSpec.parse("poisson:4000000"), 50, seed=3)
        assert len(cycles) != len(set(cycles))  # duplicates actually occur
        assert all(b >= a for a, b in zip(cycles, cycles[1:]))
        report = ServingEngine(pool_size=2, config=CFG).serve_online(
            mixed_requests(rng, 6), traffic="poisson:4000000", seed=3)
        assert [r.request_id for r in report.results] == list(range(6))
        for a, b in zip(report.results, report.results[1:]):
            if a.worker == b.worker:  # same-worker service order is FIFO
                assert b.start_cycle >= a.start_cycle

    def test_completion_event_precedes_later_arrival(self, rng):
        """When a completion lands before a later arrival cycle, the event
        log must interleave them chronologically, not batch completions at
        the end."""
        a = rng.integers(-5, 5, (4, 4)).astype(np.int16)
        requests = [gemm_request(0, a, a), gemm_request(1, a, a)]
        worker = SystemWorker(0, CFG)
        probe = worker.run(requests[0])
        service = probe.sim_cycles
        trace = f"trace:0,{service + 1000}"  # second arrival after completion
        dispatcher = OnlineDispatcher([SystemWorker(0, CFG)])
        results = dispatcher.run(
            stamp_arrivals(requests, TrafficSpec.parse(trace)))
        log = [(e.kind, e.request_id) for e in dispatcher.events]
        assert log == [
            ("arrival", 0), ("dispatch", 0), ("completion", 0),
            ("arrival", 1), ("dispatch", 1), ("completion", 1),
        ]
        cycles = [e.cycle for e in dispatcher.events]
        assert cycles == sorted(cycles)
        assert results[0].completion_cycle == service
        assert results[1].start_cycle == service + 1000


class TestOnlineServing:
    def test_conservation_laws_per_request(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve_online(mixed_requests(rng, 8),
                                     traffic="poisson:25", seed=7, verify=True)
        assert report.mode == "online"
        assert report.verified is True
        for r in report.results:
            assert r.completion_cycle >= r.arrival_cycle
            assert r.start_cycle >= r.arrival_cycle
            assert r.queue_delay_cycles >= 0
            assert r.queue_delay_cycles + r.sim_cycles == r.latency_cycles

    def test_deterministic_under_fixed_seed(self, rng):
        requests = mixed_requests(rng, 8)
        first = ServingEngine(pool_size=2, config=CFG).serve_online(
            requests, traffic="poisson:25", seed=7)
        second = ServingEngine(pool_size=2, config=CFG).serve_online(
            requests, traffic="poisson:25", seed=7)
        for a, b in zip(first.results, second.results):
            assert (a.arrival_cycle, a.start_cycle, a.completion_cycle,
                    a.worker) == (b.arrival_cycle, b.start_cycle,
                                  b.completion_cycle, b.worker)
        a_dict, b_dict = first.as_dict(), second.as_dict()
        for volatile in ("wall_seconds", "requests_per_second"):
            a_dict.pop(volatile), b_dict.pop(volatile)
        assert a_dict == b_dict

    def test_report_invariants_online(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve_online(mixed_requests(rng, 8),
                                     traffic="poisson:25", seed=7)
        results = report.results
        assert report.total_sim_cycles == sum(r.sim_cycles for r in results)
        assert report.makespan_cycles == max(r.completion_cycle for r in results)
        assert report.makespan_cycles >= max(r.latency_cycles for r in results)
        assert report.traffic == "poisson:25"
        for stats in report.per_worker.values():
            assert 0.0 <= stats["utilization"] <= 1.0

    def test_burst_queues_behind_busy_pool(self, rng):
        # 4 simultaneous arrivals on one worker: FIFO queue, strictly
        # increasing start cycles, everyone after the first waits
        engine = ServingEngine(pool_size=1, config=CFG)
        report = engine.serve_online(mixed_requests(rng, 4), traffic="bursty:4:0")
        starts = [r.start_cycle for r in report.results]
        assert starts == sorted(starts)
        assert report.results[0].queue_delay_cycles == 0
        for prev, r in zip(report.results, report.results[1:]):
            assert r.start_cycle == prev.completion_cycle
            assert r.queue_delay_cycles > 0

    def test_replay_uses_request_stamps(self, rng):
        a = rng.integers(-5, 5, (4, 6)).astype(np.int16)
        b = rng.integers(-5, 5, (6, 4)).astype(np.int16)
        requests = [
            dataclasses.replace(gemm_request(0, a, b), arrival_cycle=1000),
            dataclasses.replace(gemm_request(1, a, b), arrival_cycle=2500),
        ]
        report = ServingEngine(pool_size=2, config=CFG).serve_online(requests)
        assert report.traffic == "replay"
        assert [r.arrival_cycle for r in report.results] == [1000, 2500]

    def test_least_backlog_spreads_simultaneous_burst(self, rng):
        # a burst of 4 over 2 idle workers must use both (backlog-aware),
        # with ties broken by lowest worker index
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve_online(mixed_requests(rng, 4), traffic="bursty:4:0")
        assert report.results[0].worker == 0
        assert report.results[1].worker == 1
        assert {r.worker for r in report.results} == {0, 1}

    def test_online_json_record(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve_online(mixed_requests(rng, 6),
                                     traffic="uniform:100:5000", seed=3)
        decoded = json.loads(report.to_json())
        assert decoded["mode"] == "online"
        assert decoded["traffic"] == "uniform:100:5000"
        for block in ("latency_cycles", "queue_delay_cycles", "service_cycles"):
            assert set(decoded[block]) == {"min", "mean", "p50", "p90", "p99", "max"}
        for stats in decoded["per_worker"].values():
            assert set(stats) == {"served", "busy_cycles", "utilization",
                                  "recoveries", "rebuilds"}
        assert decoded["faults"] is None
        assert decoded["availability"]["success_rate"] == 1.0

    def test_online_multiprocess_matches_serial(self, rng):
        """The dispatch core lifted the old processes=1 restriction: a
        multi-process online run is bit-identical to the serial one."""
        requests = mixed_requests(rng, 4)
        serial = ServingEngine(pool_size=2, config=CFG).serve_online(
            requests, traffic="poisson:25", seed=7)
        engine = ServingEngine(pool_size=2, config=CFG, processes=2)
        try:
            parallel = engine.serve_online(requests, traffic="poisson:25", seed=7)
        finally:
            engine.close()
        assert parallel.processes == 2
        for a, b in zip(serial.results, parallel.results):
            assert np.array_equal(a.output, b.output)
            assert (a.sim_cycles, a.worker, a.start_cycle, a.completion_cycle) \
                == (b.sim_cycles, b.worker, b.start_cycle, b.completion_cycle)
        assert serial.makespan_cycles == parallel.makespan_cycles

    def test_online_matches_offline_outputs(self, rng):
        """Queueing changes timing, never numerics: same outputs either way."""
        requests = mixed_requests(rng, 8)
        offline = ServingEngine(pool_size=2, config=CFG).serve(requests)
        online = ServingEngine(pool_size=2, config=CFG).serve_online(
            requests, traffic="poisson:25", seed=7)
        for a, b in zip(offline.results, online.results):
            assert np.array_equal(a.output, b.output)
            assert a.sim_cycles == b.sim_cycles  # service time is arrival-free

    def test_event_log_chronological(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        requests = engine.serve_online(mixed_requests(rng, 6),
                                       traffic="poisson:25", seed=7)
        del requests  # report unused; inspect the dispatcher via a fresh run
        workers = [SystemWorker(i, CFG) for i in range(2)]
        dispatcher = OnlineDispatcher(workers)
        stamped = stamp_arrivals(mixed_requests(rng, 6),
                                 TrafficSpec.parse("poisson:25"), seed=7)
        dispatcher.run(stamped)
        cycles = [event.cycle for event in dispatcher.events]
        assert cycles == sorted(cycles)
        kinds = {event.kind for event in dispatcher.events}
        assert kinds == {"arrival", "dispatch", "completion"}
        assert dispatcher.makespan_cycles == max(dispatcher.free_at)


class TestParallelReassembly:
    """ProcessPool.run_batch scatters shard batches back to submission
    order; a short shard must raise, never silently drop a result."""

    @staticmethod
    def _stub_pool(batches):
        from repro.serve.dispatch import ProcessPool

        pool = ProcessPool.__new__(ProcessPool)
        pool.pool_size = 2
        pool.processes = 2
        pool.shard_of = {0: 0, 1: 1}
        pool._busy = [0, 0]
        pool._updates = [[], []]
        pool._send = lambda shard, command, **kwargs: None
        pool._recv = lambda shard: ("ok", batches[shard], None)
        return pool

    @staticmethod
    def _result(name):
        return SimpleNamespace(status="failed", worker=-1, name=name)

    def test_short_shard_raises(self, rng):
        requests = mixed_requests(rng, 2)
        pool = self._stub_pool({0: (0.0, []), 1: (0.0, [self._result("r1")])})
        with pytest.raises(RuntimeError, match="shard 0 returned 0 results"):
            pool.run_batch([(0, requests[0]), (1, requests[1])])

    def test_run_batch_restores_submission_order(self, rng):
        requests = mixed_requests(rng, 3)
        r0, r1, r2 = (self._result(f"r{i}") for i in range(3))
        # worker 0 (shard 0) serves positions 0 and 2; worker 1 position 1
        pool = self._stub_pool({0: (0.5, [r0, r2]), 1: (0.25, [r1])})
        wall, results = pool.run_batch(
            [(0, requests[0]), (1, requests[1]), (0, requests[2])]
        )
        assert results == [r0, r1, r2]
        assert wall == 0.5  # the slowest shard's serving loop


def test_partial_timeline_rejected_by_online_report(rng):
    """A result with only some timeline fields set must hit the diagnostic
    ValueError, not a TypeError inside latency_stats."""
    a = rng.integers(-5, 5, (4, 4)).astype(np.int16)
    engine = ServingEngine(pool_size=1, config=CFG)
    report = engine.serve_online([gemm_request(0, a, a)], traffic="trace:100")
    broken = report.results[0]
    broken.arrival_cycle = None  # completion_cycle still set
    with pytest.raises(ValueError, match="needs simulated timelines"):
        build_serving_report([broken], 1, 1, "least_loaded", 0.0, mode="online")
