"""Serving engine tests: scheduling, bit-exactness, parallelism, reports."""

import json

import numpy as np
import pytest

from repro.compiler import FUNC5_CGEMM, FUNC5_EWISE_ADD, FUNC5_FC, FUNC5_ROWSUM
from repro.core.config import ArcaneConfig
from repro.eval.serving import percentile
from repro.serve import (
    GraphNode,
    InferenceRequest,
    ServingEngine,
    SystemWorker,
    conv_layer_request,
    expected_output,
    gemm_request,
    graph_request,
    kernel_request,
)

CFG = ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=8, main_memory_kib=512)


def mixed_requests(rng, count):
    requests = []
    for rid in range(count):
        slot = rid % 4
        if slot == 0:
            x = rng.integers(-8, 8, (3 * 12, 12)).astype(np.int8)
            f = rng.integers(-2, 3, (9, 3)).astype(np.int8)
            requests.append(conv_layer_request(rid, x, f))
        elif slot == 1:
            a = rng.integers(-5, 5, (6, 8)).astype(np.int16)
            b = rng.integers(-5, 5, (8, 10)).astype(np.int16)
            c = rng.integers(-5, 5, (6, 10)).astype(np.int16)
            requests.append(gemm_request(rid, a, b, c, alpha=2, beta=-1))
        elif slot == 2:
            xv = rng.integers(-8, 8, (1, 32)).astype(np.int16)
            w = rng.integers(-8, 8, (32, 12)).astype(np.int16)
            bias = rng.integers(-8, 8, (1, 12)).astype(np.int16)
            requests.append(kernel_request(rid, FUNC5_FC, [xv, w, bias], (1, 12)))
        else:
            a = rng.integers(-4, 4, (4, 6)).astype(np.int16)
            b = rng.integers(-4, 4, (6, 4)).astype(np.int16)
            c = np.zeros((4, 4), dtype=np.int16)
            d = rng.integers(-4, 4, (4, 4)).astype(np.int16)
            nodes = [
                GraphNode("prod", FUNC5_CGEMM, ("a", "b", "c"), (4, 4), params=(1, 0)),
                GraphNode("sum", FUNC5_EWISE_ADD, ("prod", "d"), (4, 4)),
                GraphNode("row", FUNC5_ROWSUM, ("sum",), (4, 1)),
            ]
            requests.append(
                graph_request(rid, {"a": a, "b": b, "c": c, "d": d}, nodes)
            )
    return requests


class TestEngineServing:
    def test_mixed_batch_verified_on_pool_of_two(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        requests = mixed_requests(rng, 12)
        report = engine.serve(requests, verify=True)
        assert report.verified is True
        assert report.n_requests == 12
        assert sum(report.per_kind.values()) == 12
        assert len(report.per_worker) == 2  # both systems actually served
        assert report.total_sim_cycles > 0
        # results arrive in request order
        assert [r.request_id for r in report.results] == list(range(12))

    def test_results_bit_exact_with_single_shot(self, rng):
        """Each pooled result must match a fresh system's single-shot run —
        outputs AND cycle counts (cold-start equivalence after reset)."""
        engine = ServingEngine(pool_size=2, config=CFG)
        requests = mixed_requests(rng, 8)
        report = engine.serve(requests)
        for request, result in zip(requests, report.results):
            single = SystemWorker(99, CFG).run(request)
            assert np.array_equal(single.output, result.output)
            assert single.sim_cycles == result.sim_cycles

    def test_outputs_match_golden_models(self, rng):
        engine = ServingEngine(pool_size=3, config=CFG)
        requests = mixed_requests(rng, 8)
        report = engine.serve(requests)
        for request, result in zip(requests, report.results):
            assert np.array_equal(result.output, expected_output(request))

    def test_round_robin_policy(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG, policy="round_robin")
        report = engine.serve(mixed_requests(rng, 6), verify=True)
        workers = [r.worker for r in report.results]
        assert workers == [0, 1, 0, 1, 0, 1]

    def test_parallel_processes_match_serial(self, rng):
        requests = mixed_requests(rng, 8)
        serial = ServingEngine(pool_size=2, config=CFG).serve(requests)
        parallel = ServingEngine(pool_size=2, config=CFG, processes=2).serve(requests)
        for s, p in zip(serial.results, parallel.results):
            assert np.array_equal(s.output, p.output)
            assert s.sim_cycles == p.sim_cycles
            assert s.worker == p.worker
        assert serial.makespan_cycles == parallel.makespan_cycles

    def test_duplicate_request_ids_rejected(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        a = rng.integers(-5, 5, (4, 4)).astype(np.int16)
        b = rng.integers(-5, 5, (4, 4)).astype(np.int16)
        with pytest.raises(ValueError, match="duplicate request_id"):
            engine.serve([gemm_request(1, a, b), gemm_request(1, a, b)])

    def test_long_lived_pool_survives_many_requests(self, rng):
        """The acceptance-criteria scenario, sized for the test suite: one
        pool, many requests, no MemoryError, no deadlock."""
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve(mixed_requests(rng, 40), verify=True)
        assert report.n_requests == 40
        for worker in engine.workers:
            assert worker.system.heap_stats()["live_matrices"] == 0


class TestRequestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            InferenceRequest(0, "sorting", {})

    def test_graph_undefined_tensor_rejected(self, rng):
        a = rng.integers(-4, 4, (4, 4)).astype(np.int16)
        nodes = [GraphNode("out", FUNC5_EWISE_ADD, ("a", "missing"), (4, 4))]
        with pytest.raises(ValueError, match="undefined tensors"):
            graph_request(0, {"a": a}, nodes)

    def test_graph_duplicate_tensor_rejected(self, rng):
        a = rng.integers(-4, 4, (4, 4)).astype(np.int16)
        nodes = [GraphNode("a", FUNC5_ROWSUM, ("a",), (4, 1))]
        with pytest.raises(ValueError, match="defined twice"):
            graph_request(0, {"a": a}, nodes)

    def test_graph_bad_output_rejected(self, rng):
        a = rng.integers(-4, 4, (4, 4)).astype(np.int16)
        nodes = [GraphNode("out", FUNC5_ROWSUM, ("a",), (4, 1))]
        with pytest.raises(ValueError, match="not produced"):
            graph_request(0, {"a": a}, nodes, output="elsewhere")


class TestServingReport:
    def test_json_round_trip(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve(mixed_requests(rng, 6), verify=True)
        decoded = json.loads(report.to_json())
        assert decoded["n_requests"] == 6
        assert decoded["pool_size"] == 2
        assert decoded["verified"] is True
        assert decoded["requests_per_second"] > 0
        assert decoded["cycles_per_request"] > 0
        assert set(decoded["latency_cycles"]) == {
            "min", "mean", "p50", "p90", "p99", "max",
        }

    def test_latency_percentiles_ordered(self, rng):
        engine = ServingEngine(pool_size=2, config=CFG)
        report = engine.serve(mixed_requests(rng, 10))
        lat = report.latency_cycles
        assert lat["min"] <= lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]
        assert report.makespan_cycles <= report.total_sim_cycles

    def test_percentile_function(self):
        values = [10, 20, 30, 40]
        assert percentile(values, 0) == 10
        assert percentile(values, 100) == 40
        assert percentile(values, 50) == 25.0
        assert percentile([], 50) == 0.0
        assert percentile([7], 99) == 7.0


class TestWorkerLifecycle:
    def test_worker_resets_between_requests(self, rng):
        worker = SystemWorker(0, CFG)
        for rid in range(3):
            request = gemm_request(
                rid,
                rng.integers(-5, 5, (6, 8)).astype(np.int16),
                rng.integers(-5, 5, (8, 10)).astype(np.int16),
            )
            result = worker.run(request)
            assert np.array_equal(result.output, expected_output(request))
            assert worker.system.heap_stats()["live_matrices"] == 0
        assert worker.served == 3
        assert worker.busy_cycles > 0

    def test_worker_resets_even_on_failure(self, rng):
        from repro.serve import RequestRejected

        worker = SystemWorker(0, CFG)
        bad = kernel_request(0, 30, [np.zeros((4, 4), dtype=np.int16)], (4, 4))
        with pytest.raises(RequestRejected, match="killed"):
            worker.run(bad)  # slot 30 is unregistered -> offload killed
        # the system is still clean and serviceable
        assert worker.system.heap_stats()["live_matrices"] == 0
        good = gemm_request(
            1,
            rng.integers(-5, 5, (4, 4)).astype(np.int16),
            rng.integers(-5, 5, (4, 4)).astype(np.int16),
        )
        result = worker.run(good)
        assert np.array_equal(result.output, expected_output(good))
