"""Assembler tests: syntax, pseudo-instructions, directives, errors."""

import pytest

from repro.isa.asm import AssemblerError, assemble, parse_register
from repro.isa.decode import decode
from repro.isa.disasm import disassemble


class TestRegisters:
    def test_abi_names(self):
        assert parse_register("zero") == 0
        assert parse_register("ra") == 1
        assert parse_register("sp") == 2
        assert parse_register("a0") == 10
        assert parse_register("t6") == 31
        assert parse_register("fp") == parse_register("s0") == 8

    def test_numeric_names(self):
        assert parse_register("x0") == 0
        assert parse_register("x31") == 31

    def test_invalid(self):
        with pytest.raises(AssemblerError):
            parse_register("x32")
        with pytest.raises(AssemblerError):
            parse_register("q7")


class TestLabels:
    def test_forward_and_backward(self):
        program = assemble(
            """
            start:
                j end
                nop
            end:
                j start
            """
        )
        first = decode(program.words()[0])
        last = decode(program.words()[2])
        assert first.imm == 8
        assert last.imm == -8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a:\n nop\na:\n nop")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblerError, match="undefined"):
            assemble("j nowhere")

    def test_label_address_in_symbols(self):
        program = assemble("nop\nnop\nhere:\n nop", base=0x100)
        assert program.symbols["here"] == 0x108


class TestPseudoInstructions:
    def test_li_small(self):
        program = assemble("li a0, 42")
        assert program.size == 4
        assert decode(program.words()[0]).imm == 42

    def test_li_large_expands(self):
        program = assemble("li a0, 0x12345678")
        assert program.size == 8

    def test_li32_always_two_instructions(self):
        assert assemble("li32 a0, 1").size == 8
        assert assemble("li32 a0, 0x12345678").size == 8

    def test_mv_not_neg(self):
        for text in ("mv a0, a1", "not a0, a1", "neg a0, a1"):
            assert assemble(text).size == 4

    def test_ret_is_jalr_ra(self):
        instr = decode(assemble("ret").words()[0])
        assert instr.mnemonic == "jalr" and instr.rs1 == 1 and instr.rd == 0

    def test_branch_pseudos(self):
        program = assemble("target:\n beqz a0, target\n bnez a1, target\n blez a2, target")
        mnemonics = [decode(w).mnemonic for w in program.words()]
        assert mnemonics == ["beq", "bne", "bge"]

    def test_swapped_branches(self):
        instr = decode(assemble("t:\n bgt a0, a1, t").words()[0])
        assert instr.mnemonic == "blt"
        assert instr.rs1 == 11 and instr.rs2 == 10  # operands swapped


class TestDirectives:
    def test_word_half_byte(self):
        program = assemble(".word 0xdeadbeef\n.half 0x1234\n.byte 0x56")
        assert program.data[:4] == (0xDEADBEEF).to_bytes(4, "little")
        assert program.data[4:6] == (0x1234).to_bytes(2, "little")
        assert program.data[6] == 0x56

    def test_zero_and_align(self):
        program = assemble(".byte 1\n.align 2\n.word 2")
        assert program.size == 8
        assert program.data[1:4] == b"\x00\x00\x00"

    def test_word_with_symbol(self):
        program = assemble("entry:\n nop\n.word entry", base=0x40)
        assert program.data[4:8] == (0x40).to_bytes(4, "little")


class TestMemoryOperands:
    def test_load_store_forms(self):
        program = assemble("lw a0, 4(sp)\nsw a0, -4(sp)\nlb a1, 0(a2)")
        lw, sw, lb = [decode(w) for w in program.words()]
        assert lw.imm == 4 and sw.imm == -4 and lb.imm == 0

    def test_postincrement_requires_custom_mnemonic(self):
        with pytest.raises(AssemblerError, match="post-increment"):
            assemble("lw a0, 4(sp!)")
        with pytest.raises(AssemblerError, match="post-increment"):
            assemble("cv.lw a0, 4(sp)")

    def test_bad_operand_syntax(self):
        with pytest.raises(AssemblerError):
            assemble("lw a0, 4[sp]")


class TestXcvpulpSyntax:
    def test_postincrement_load(self):
        instr = decode(assemble("cv.lw a0, 4(a1!)").words()[0])
        assert instr.mnemonic == "cv.lw" and instr.imm == 4

    def test_hardware_loop_setup(self):
        program = assemble("cv.setup 0, t0, end\nnop\nend:\n nop")
        instr = decode(program.words()[0])
        assert instr.mnemonic == "cv.setup"
        assert instr.operand("loop") == 0
        assert instr.imm == 4  # (end - pc) / 2

    def test_simd_needs_suffix(self):
        with pytest.raises(AssemblerError, match="suffix"):
            assemble("pv.add a0, a1, a2")

    def test_simd_encodings(self):
        for text in ("pv.add.b a0, a1, a2", "pv.sdotsp.h a0, a1, a2",
                     "pv.max.b a0, a1, a2", "cv.mac a0, a1, a2"):
            instr = decode(assemble(text).words()[0])
            assert instr.extension == "xcvpulp"


class TestXmnmcSyntax:
    def test_xmr_and_xmk(self):
        program = assemble("xmr.w a0, a1, a2\nxmk4.b a0, a1, a2")
        xmr, xmk = [decode(w) for w in program.words()]
        assert xmr.mnemonic == "xmr.w"
        assert xmk.mnemonic == "xmk4.b"


class TestErrors:
    def test_unknown_mnemonic_with_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("nop\nfrobnicate a0, a1")

    def test_branch_out_of_range(self):
        body = "target:\n" + "nop\n" * 1100 + "beq a0, a1, target"
        with pytest.raises(AssemblerError):
            assemble(body)


class TestDisassembler:
    @pytest.mark.parametrize(
        "text",
        ["add a0, a1, a2", "addi a0, a1, -5", "lw a0, 4(sp)", "sw a0, 4(sp)",
         "lui a0, 0x12", "jal ra, 0x0", "cv.lw a0, 4(a1!)", "pv.add.b a0, a1, a2",
         "xmk0.w a0, a1, a2"],
    )
    def test_roundtrip_mnemonic(self, text):
        word = assemble(text).words()[0]
        rendered = disassemble(word)
        assert rendered.split()[0] == text.split()[0]
