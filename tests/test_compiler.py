"""Unit tests for the kernel compiler: IR validation, shape inference,
transform legality (shard / strip-mine / unroll / vectorize) and the
lowering checks.  End-to-end parity of compiled kernels lives in
``test_compiled_kernels.py``."""

import pytest

from repro.compiler.ir import (
    Accum,
    Assign,
    Const,
    IrError,
    KernelProgram,
    Loop,
    Operand,
    ShapeError,
    StripLoop,
    Sym,
    VClearElem,
    VEwise,
    VInit,
    VMacc,
    VReduce,
    bind_shapes,
    eval_expr,
    key,
    subst,
    syms,
    walk,
)
from repro.compiler.lower import LoweringError, compile_kernel
from repro.compiler.schedule import Schedule, ScheduleError
from repro.runtime.kernels.common import k_strip_size


M, N, K = Sym("M"), Sym("N"), Sym("K")
i, j, k = Sym("i"), Sym("j"), Sym("k")


def ewise_program(value_of=None):
    d = Operand("d", (M, N), out=True)
    x = Operand("x", (M, N))
    y = Operand("y", (M, N))
    value = value_of(x, y) if value_of else x[i, j] + y[i, j]
    return KernelProgram(
        "ew", [d, x, y],
        [Loop(i, M, [Loop(j, N, [Assign(d[i, j], value)])], parallel=True)],
    )


def gemm_program():
    alpha, beta = Sym("alpha"), Sym("beta")
    d = Operand("d", (M, N), out=True)
    a = Operand("a", (M, K))
    b = Operand("b", (K, N))
    c = Operand("c", (M, N))
    return KernelProgram(
        "g", [d, a, b, c],
        [
            Loop(i, M, [
                Loop(j, N, [Assign(d[i, j], beta * c[i, j])]),
                Loop(k, K, [Loop(j, N, [Accum(d[i, j], alpha * a[i, k] * b[k, j])])]),
            ], parallel=True),
        ],
        params=["alpha", "beta"],
    )


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class TestExpr:
    def test_eval(self):
        expr = (M - K + 1) * 2 // 3
        assert eval_expr(expr, {"M": 10, "K": 3}) == 5

    def test_unbound_symbol(self):
        with pytest.raises(ShapeError, match="not bound"):
            eval_expr(M + 1, {})

    def test_division_by_zero(self):
        with pytest.raises(ShapeError, match="division by zero"):
            eval_expr(M // K, {"M": 4, "K": 0})

    def test_syms_and_subst(self):
        expr = M * K + Const(2)
        assert syms(expr) == {"M", "K"}
        replaced = subst(expr, {"K": Const(5)})
        assert eval_expr(replaced, {"M": 3}) == 17
        assert key(expr) != key(replaced)


# ---------------------------------------------------------------------------
# program validation
# ---------------------------------------------------------------------------


class TestValidation:
    def test_needs_one_out(self):
        with pytest.raises(IrError, match="exactly one out"):
            KernelProgram("p", [Operand("x", (M, N))], [])

    def test_too_many_params(self):
        d = Operand("d", (M, N), out=True)
        x = Operand("x", (M, N))
        with pytest.raises(IrError, match="at most two"):
            KernelProgram("p", [d, x], [], params=["a", "b", "c"])

    def test_too_many_sources(self):
        ops = [Operand("d", (M, N), out=True)] + [
            Operand(f"s{index}", (M, N)) for index in range(4)
        ]
        with pytest.raises(IrError, match="1..3 source"):
            KernelProgram("p", ops, [])

    def test_write_to_source_rejected(self):
        d = Operand("d", (M, N), out=True)
        x = Operand("x", (M, N))
        body = [Loop(i, M, [Loop(j, N, [Assign(x[i, j], Const(0))])])]
        with pytest.raises(IrError, match="not the out operand"):
            KernelProgram("p", [d, x], body)

    def test_read_of_destination_rejected(self):
        d = Operand("d", (M, N), out=True)
        x = Operand("x", (M, N))
        body = [Loop(i, M, [Loop(j, N, [Assign(d[i, j], d[i, j] + x[i, j])])])]
        with pytest.raises(IrError, match="write-only"):
            KernelProgram("p", [d, x], body)

    def test_unbound_loop_symbol(self):
        d = Operand("d", (M, N), out=True)
        x = Operand("x", (M, N))
        body = [Loop(i, M, [Assign(d[i, Sym("mystery")], Const(0))])]
        with pytest.raises(IrError, match="unbound symbols"):
            KernelProgram("p", [d, x], body)

    def test_loop_var_shadowing(self):
        d = Operand("d", (M, N), out=True)
        x = Operand("x", (M, N))
        body = [Loop(i, M, [Loop(i, N, [Assign(d[i, i], Const(0))])])]
        with pytest.raises(IrError, match="shadows"):
            KernelProgram("p", [d, x], body)

    def test_loop_extent_must_be_shape_derived(self):
        d = Operand("d", (M, N), out=True)
        x = Operand("x", (M, N))
        body = [Loop(i, M, [Loop(j, i, [Assign(d[i, j], Const(0))])])]
        with pytest.raises(IrError, match="loop bounds"):
            KernelProgram("p", [d, x], body)


# ---------------------------------------------------------------------------
# runtime shape binding
# ---------------------------------------------------------------------------


class TestBindShapes:
    def test_binds_and_checks(self):
        program = gemm_program()
        env = {"alpha": 1, "beta": 0}
        bind_shapes(program, {"a": (5, 7), "b": (7, 6), "c": (5, 6), "d": (5, 6)}, env)
        assert (env["M"], env["K"], env["N"]) == (5, 7, 6)

    def test_inner_dim_mismatch(self):
        program = gemm_program()
        with pytest.raises(ShapeError, match="'b' rows"):
            bind_shapes(
                program, {"a": (5, 7), "b": (8, 6), "c": (5, 6), "d": (5, 6)}, {}
            )

    def test_destination_checked(self):
        program = gemm_program()
        with pytest.raises(ShapeError, match="destination 'd'"):
            bind_shapes(
                program, {"a": (5, 7), "b": (7, 6), "c": (5, 6), "d": (5, 9)}, {}
            )

    def test_product_solving_fixpoint(self):
        """C = f.rows // K and H = x.rows // C are solved from later facts."""
        C, H, W, Kd = Sym("C"), Sym("H"), Sym("W"), Sym("Kd")
        d = Operand("d", (C * (H - Kd + 1), W - Kd + 1), out=True)
        x = Operand("x", (C * H, W))
        f = Operand("f", (C * Kd, Kd))
        program = KernelProgram(
            "dw", [d, x, f],
            [Loop(i, C, [Assign(d[i * (H - Kd + 1), 0], Const(0))], parallel=True)],
        )
        env = {}
        bind_shapes(program, {"x": (18, 8), "f": (9, 3), "d": (12, 6)}, env)
        assert (env["C"], env["H"], env["Kd"]) == (3, 6, 3)

    def test_divisibility_enforced(self):
        C, H = Sym("C"), Sym("H")
        d = Operand("d", (C, H), out=True)
        x = Operand("x", (C * H, H))
        program = KernelProgram(
            "p", [d, x], [Loop(i, C, [Assign(d[i, 0], Const(0))], parallel=True)]
        )
        env = {"C": 4}
        with pytest.raises(ShapeError, match="cannot split"):
            bind_shapes(program, {"x": (10, 3), "d": (4, 3)}, env)


# ---------------------------------------------------------------------------
# schedule transforms
# ---------------------------------------------------------------------------


class TestShard:
    def test_marks_outermost_parallel_loop(self):
        sched = Schedule(ewise_program()).shard("i")
        (loop,) = sched.program.find_loops("i")
        assert loop.sharded

    def test_reduction_loop_rejected(self):
        with pytest.raises(ScheduleError, match="reduction loop"):
            Schedule(gemm_program()).shard("k")

    def test_inner_loop_rejected(self):
        d = Operand("d", (M, N), out=True)
        x = Operand("x", (M, N))
        program = KernelProgram(
            "p", [d, x],
            [Loop(i, M, [
                Loop(Sym("r"), N, [Assign(d[i, Sym("r")], Const(0))], parallel=True),
            ], parallel=True)],
        )
        with pytest.raises(ScheduleError, match="outermost"):
            Schedule(program).shard("r")

    def test_double_shard_rejected(self):
        with pytest.raises(ScheduleError, match="already has a sharded"):
            Schedule(ewise_program()).shard("i").shard("i")


class TestStripMine:
    def test_structure(self):
        sched = Schedule(gemm_program()).strip_mine("k")
        strips = [s for s in walk(sched.program.body) if isinstance(s, StripLoop)]
        assert len(strips) == 1
        assert not sched.program.find_loops("k")  # k is consumed

    def test_parallel_loop_rejected(self):
        with pytest.raises(ScheduleError, match="parallel loop"):
            Schedule(gemm_program()).strip_mine("i")

    def test_missing_loop(self):
        with pytest.raises(ScheduleError, match="no loop over"):
            Schedule(gemm_program()).strip_mine("zz")

    def test_twice_rejected(self):
        d = Operand("d", (M, 1), out=True)
        x = Operand("x", (M, N))
        program = KernelProgram(
            "p", [d, x],
            [Loop(i, M, [
                Assign(d[i, 0], Const(0)),
                Loop(j, N, [Accum(d[i, 0], x[i, j])]),
                Loop(k, N, [Accum(d[i, 0], x[i, k])]),
            ], parallel=True)],
        )
        with pytest.raises(ScheduleError, match="already has a strip-mined"):
            Schedule(program).strip_mine("j").strip_mine("k")

    def test_generated_names_avoid_params(self):
        """A param named 'k_o' must not be shadowed by the strip counter."""
        k_o = Sym("k_o")
        d = Operand("d", (Const(1), N), out=True)
        x = Operand("x", (K, N))
        program = KernelProgram(
            "p", [d, x],
            [
                Loop(j, N, [Assign(d[0, j], Const(0))]),
                Loop(k, K, [Loop(j, N, [Accum(d[0, j], k_o * x[k, j])])]),
            ],
            params=["k_o"],
        )
        sched = Schedule(program).strip_mine("k")
        (strip,) = [s for s in walk(sched.program.body) if isinstance(s, StripLoop)]
        assert strip.outer_var != "k_o"
        assert len({strip.outer_var, strip.inner_var, strip.size_sym, "k_o"}) == 4


class TestUnroll:
    def make_const_program(self, extent=4):
        d = Operand("d", (M, N), out=True)
        x = Operand("x", (M, N))
        r = Sym("r")
        return KernelProgram(
            "p", [d, x],
            [Loop(i, M, [
                Loop(j, N, [Assign(d[i, j], Const(0))]),
                Loop(r, extent, [
                    Loop(j, N, [Accum(d[i, j], x[i, j])]),
                ]),
            ], parallel=True)],
        )

    def test_symbolic_extent_rejected(self):
        with pytest.raises(ScheduleError, match="not a compile-time constant"):
            Schedule(gemm_program()).unroll("k")

    def test_factor_must_divide(self):
        with pytest.raises(ScheduleError, match="does not divide"):
            Schedule(self.make_const_program(4)).unroll("r", 3)

    def test_full_unroll_replicates_body(self):
        sched = Schedule(self.make_const_program(4)).unroll("r")
        assert not sched.program.find_loops("r")
        accums = [s for s in walk(sched.program.body) if isinstance(s, Accum)]
        assert len(accums) == 4

    def test_partial_unroll_keeps_outer_loop(self):
        sched = Schedule(self.make_const_program(4)).unroll("r", 2)
        outer = sched.program.find_loops("r_u")
        assert len(outer) == 1
        assert eval_expr(outer[0].extent, {}) == 2
        accums = [s for s in walk(outer[0].body) if isinstance(s, Accum)]
        assert len(accums) == 2

    def make_sharded_const_rows(self):
        d = Operand("d", (Const(4), N), out=True)
        x = Operand("x", (Const(4), N))
        return KernelProgram(
            "p", [d, x],
            [Loop(i, Const(4), [
                Loop(j, N, [Assign(d[i, j], Const(0))]),
            ], parallel=True)],
        )

    def test_partial_unroll_preserves_shard_mark(self):
        sched = Schedule(self.make_sharded_const_rows()).shard("i").unroll("i", 2)
        (outer,) = sched.program.find_loops("i_u")
        assert outer.sharded

    def test_full_unroll_of_sharded_loop_rejected(self):
        with pytest.raises(ScheduleError, match="sharded"):
            Schedule(self.make_sharded_const_rows()).shard("i").unroll("i")


class TestVectorize:
    def test_patterns(self):
        sched = Schedule(gemm_program()).vectorize("j")
        stmts = list(walk(sched.program.body))
        inits = [s for s in stmts if isinstance(s, VInit)]
        maccs = [s for s in stmts if isinstance(s, VMacc)]
        assert len(inits) == 1 and len(maccs) == 1
        assert inits[0].src.operand == "c"
        assert maccs[0].src.operand == "b"
        assert "alpha" in syms(maccs[0].coeff)
        assert sched.program.vector_var == "j"

    def test_ewise_patterns(self):
        add = Schedule(ewise_program(lambda x, y: x[i, j] + y[i, j])).vectorize("j")
        mul = Schedule(ewise_program(lambda x, y: x[i, j] * y[i, j])).vectorize("j")
        for sched, op in ((add, "add"), (mul, "mul")):
            (stmt,) = [s for s in walk(sched.program.body) if isinstance(s, VEwise)]
            assert stmt.op == op

    def test_reduction_pattern(self):
        d = Operand("d", (M, 1), out=True)
        x = Operand("x", (M, N))
        program = KernelProgram(
            "p", [d, x],
            [Loop(i, M, [
                Assign(d[i, 0], Const(0)),
                Loop(j, N, [Accum(d[i, 0], x[i, j])]),
            ], parallel=True)],
        )
        sched = Schedule(program).vectorize("j")
        (reduce_stmt,) = [s for s in walk(sched.program.body) if isinstance(s, VReduce)]
        assert reduce_stmt.src.operand == "x"

    def test_non_innermost_rejected(self):
        with pytest.raises(ScheduleError, match="innermost"):
            Schedule(gemm_program()).vectorize("k")

    def test_row_indexing_rejected(self):
        d = Operand("d", (M, N), out=True)
        x = Operand("x", (N, M))
        program = KernelProgram(
            "p", [d, x],
            [Loop(i, M, [Loop(j, N, [Assign(d[i, j], x[j, i])])], parallel=True)],
        )
        with pytest.raises(ScheduleError, match="rows"):
            Schedule(program).vectorize("j")

    def test_unsupported_pattern_rejected(self):
        bad = ewise_program(lambda x, y: x[i, j] - y[i, j])
        with pytest.raises(ScheduleError, match="does not match"):
            Schedule(bad).vectorize("j")

    def test_nonzero_splat_rejected(self):
        d = Operand("d", (M, N), out=True)
        x = Operand("x", (M, N))
        program = KernelProgram(
            "p", [d, x],
            [Loop(i, M, [Loop(j, N, [Assign(d[i, j], Const(7))])], parallel=True)],
        )
        with pytest.raises(ScheduleError, match="splat"):
            Schedule(program).vectorize("j")

    def test_twice_rejected(self):
        with pytest.raises(ScheduleError, match="already vectorized"):
            Schedule(gemm_program()).vectorize("j").vectorize("j")

    def test_offset_column_allowed(self):
        dc = Sym("dc")
        d = Operand("d", (M, N - 2), out=True)
        x = Operand("x", (M, N))
        program = KernelProgram(
            "p", [d, x],
            [Loop(i, M, [
                Loop(j, N - 2, [Assign(d[i, j], Const(0))]),
                Loop(dc, Const(2), [
                    Loop(j, N - 2, [Accum(d[i, j], x[i, j + dc])]),
                ]),
            ], parallel=True)],
        )
        sched = Schedule(program).vectorize("j")
        maccs = [s for s in walk(sched.program.body) if isinstance(s, VMacc)]
        assert key(maccs[0].src.offset) == "dc"


# ---------------------------------------------------------------------------
# lowering diagnostics
# ---------------------------------------------------------------------------


class TestLowering:
    def test_requires_vectorization(self):
        with pytest.raises(LoweringError, match="not vectorized"):
            compile_kernel(Schedule(gemm_program()), func5=9)

    def test_accumulate_before_init_rejected(self):
        d = Operand("d", (M, N), out=True)
        x = Operand("x", (M, N))
        program = KernelProgram(
            "p", [d, x],
            [Loop(i, M, [Loop(j, N, [Accum(d[i, j], x[i, j])])], parallel=True)],
        )
        with pytest.raises(LoweringError, match="before being initialized"):
            compile_kernel(Schedule(program).vectorize("j"), func5=9)

    def test_residual_element_statement_rejected(self):
        d = Operand("d", (M, N), out=True)
        x = Operand("x", (M, N))
        program = KernelProgram(
            "p", [d, x],
            [Loop(i, M, [
                Assign(d[i, 0], Const(3)),  # non-zero scalar init: no lowering
                Loop(j, N, [Assign(d[i, j], x[i, j])]),
            ], parallel=True)],
        )
        with pytest.raises(LoweringError, match="no scalar lowering"):
            compile_kernel(Schedule(program).vectorize("j"), func5=9)

    def test_residual_clear_lowered(self):
        d = Operand("d", (M, 1), out=True)
        x = Operand("x", (M, N))
        program = KernelProgram(
            "p", [d, x],
            [Loop(i, M, [
                Assign(d[i, 0], Const(0)),
                Loop(j, N, [Accum(d[i, 0], x[i, j])]),
            ], parallel=True)],
        )
        schedule = Schedule(program).vectorize("j")
        compile_kernel(schedule, func5=9)
        clears = [
            s for s in walk(schedule.program.body) if isinstance(s, VClearElem)
        ]
        assert len(clears) == 1


# ---------------------------------------------------------------------------
# opcode metadata the lowering consults
# ---------------------------------------------------------------------------


class TestOpTraits:
    def test_every_opcode_has_traits(self):
        from repro.vpu.visa import OP_TRAITS, VectorOpcode

        assert set(OP_TRAITS) == set(VectorOpcode)

    def test_traits_consumed_by_compiler_and_vpu(self):
        from repro.compiler.lower import _STMT_OPCODES
        from repro.vpu.visa import OP_TRAITS, VectorOpcode

        assert OP_TRAITS[VectorOpcode.VREDSUM].is_reduction
        assert OP_TRAITS[VectorOpcode.VADD_VV].n_vs_registers == 2
        assert OP_TRAITS[VectorOpcode.VMUL_VV].n_vs_registers == 2
        assert OP_TRAITS[VectorOpcode.VMACC_VS].n_vs_registers == 1
        for opcodes in _STMT_OPCODES.values():
            assert all(opcode in OP_TRAITS for opcode in opcodes)


# ---------------------------------------------------------------------------
# the shared strip-mining policy (satellite: factored out of gemm.py)
# ---------------------------------------------------------------------------


class TestStripPolicy:
    def test_caps_at_k_total(self):
        assert k_strip_size(4, free_regs=32, reserved=3) == 4

    def test_leaves_reserved_registers(self):
        assert k_strip_size(100, free_regs=32, reserved=3) == 29

    def test_always_positive(self):
        assert k_strip_size(100, free_regs=2, reserved=3) == 1

    def test_negative_reserved_rejected(self):
        with pytest.raises(ValueError):
            k_strip_size(8, 16, -1)
