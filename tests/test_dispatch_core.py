"""Unified dispatch-core equivalence tests (``pytest -m dispatch``).

The acceptance bar for the dispatch refactor: a multi-process run must be
bit-identical to the serial run for the same ``(traffic, seed, faults,
fault_seed)``, and a run with the shared fleet replay cache must produce
exactly the cold-cache outputs while giving workers replay hits on
kernels they never launched first.
"""

import warnings

import numpy as np
import pytest

from repro.core.config import ArcaneConfig
from repro.serve import (
    AdmissionPolicy,
    RetryPolicy,
    ServingEngine,
    estimate_service_cycles,
    gemm_request,
)

pytestmark = pytest.mark.dispatch

CFG = ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=8, main_memory_kib=512)


def gemm_batch(rng, count, shape=(6, 8, 5)):
    m, k, n = shape
    return [
        gemm_request(
            rid,
            rng.integers(-5, 5, (m, k)).astype(np.int16),
            rng.integers(-5, 5, (k, n)).astype(np.int16),
        )
        for rid in range(count)
    ]


def repeated_gemm_batch(count, shape=(6, 8, 5)):
    """Identical payloads under distinct ids: every request replays one kernel."""
    rng = np.random.default_rng(11)
    m, k, n = shape
    a = rng.integers(-5, 5, (m, k)).astype(np.int16)
    b = rng.integers(-5, 5, (k, n)).astype(np.int16)
    return [gemm_request(rid, a, b) for rid in range(count)]


def strip_wall(payload):
    for volatile in ("wall_seconds", "requests_per_second"):
        payload.pop(volatile, None)
    return payload


def serve_pair(requests, *, pool_size, online, **kwargs):
    """Run the same workload serial and multi-process; return both reports."""
    serial_engine = ServingEngine(pool_size=pool_size, config=CFG)
    parallel_engine = ServingEngine(pool_size=pool_size, config=CFG, processes=2)
    try:
        if online:
            serial = serial_engine.serve_online(requests, **kwargs)
            parallel = parallel_engine.serve_online(requests, **kwargs)
        else:
            serial = serial_engine.serve(requests, **kwargs)
            parallel = parallel_engine.serve(requests, **kwargs)
    finally:
        serial_engine.close()
        parallel_engine.close()
    return serial, parallel


def assert_reports_identical(serial, parallel):
    for a, b in zip(serial.results, parallel.results):
        assert a.status == b.status
        assert a.worker == b.worker
        assert a.attempts == b.attempts
        assert a.sim_cycles == b.sim_cycles
        assert a.error == b.error
        if a.output is None:
            assert b.output is None
        else:
            assert np.array_equal(a.output, b.output)
    a_dict = strip_wall(serial.as_dict())
    b_dict = strip_wall(parallel.as_dict())
    for payload in (a_dict, b_dict):
        payload.pop("processes", None)
        payload.pop("requested_processes", None)
        payload.pop("replay", None)  # per-shard cache locality may differ
    assert a_dict == b_dict


class TestSerialMultiprocessEquivalence:
    def test_online_with_faults_and_retries(self, rng):
        serial, parallel = serve_pair(
            gemm_batch(rng, 8),
            pool_size=3,
            online=True,
            traffic="poisson:25",
            seed=7,
            faults="kill:0.2,transient:0.1,slow:0.1:2x",
            fault_seed=5,
            retry=RetryPolicy(max_attempts=3, backoff_cycles=64),
        )
        assert parallel.processes == 2
        assert_reports_identical(serial, parallel)

    def test_online_with_worker_crash(self, rng):
        serial, parallel = serve_pair(
            gemm_batch(rng, 6),
            pool_size=2,
            online=True,
            traffic="poisson:20",
            seed=3,
            faults="crash_worker:0@1",
            fault_seed=0,
        )
        assert_reports_identical(serial, parallel)
        assert serial.per_worker[0]["rebuilds"] == parallel.per_worker[0]["rebuilds"]

    def test_offline_with_faults(self, rng):
        serial, parallel = serve_pair(
            gemm_batch(rng, 8),
            pool_size=3,
            online=False,
            faults="kill:0.3",
            fault_seed=1,
            retry=RetryPolicy(max_attempts=2),
        )
        assert_reports_identical(serial, parallel)

    def test_offline_static_fast_path(self, rng):
        serial, parallel = serve_pair(
            gemm_batch(rng, 6), pool_size=3, online=False, verify=True,
        )
        assert_reports_identical(serial, parallel)


class TestFleetReplayCache:
    def test_serial_fleet_hits_are_bit_exact(self):
        requests = repeated_gemm_batch(4)
        cold_engine = ServingEngine(pool_size=2, config=CFG)
        shared_engine = ServingEngine(pool_size=2, config=CFG, share_replay=True)
        cold = cold_engine.serve_online(requests)
        shared = shared_engine.serve_online(requests)
        for a, b in zip(cold.results, shared.results):
            assert np.array_equal(a.output, b.output)
            assert a.sim_cycles == b.sim_cycles
            assert (a.worker, a.start_cycle, a.completion_cycle) \
                == (b.worker, b.start_cycle, b.completion_cycle)
        assert cold.makespan_cycles == shared.makespan_cycles
        # worker 1 never launched the kernel first, yet replays it from
        # the fleet store seeded by worker 0
        assert shared.replay is not None and shared.replay["shared"]
        assert shared.replay["per_worker"]["1"]["fleet_hits"] >= 1
        assert cold.replay is None or not cold.replay["shared"]

    def test_multiprocess_fleet_propagation(self):
        requests = repeated_gemm_batch(4)
        cold = ServingEngine(pool_size=2, config=CFG).serve_online(requests)
        engine = ServingEngine(
            pool_size=2, config=CFG, processes=2, share_replay=True
        )
        try:
            shared = engine.serve_online(requests)
        finally:
            engine.close()
        for a, b in zip(cold.results, shared.results):
            assert np.array_equal(a.output, b.output)
            assert a.sim_cycles == b.sim_cycles
        assert cold.makespan_cycles == shared.makespan_cycles
        # the recording crossed a process boundary: shard 1's worker
        # replays a kernel only shard 0's worker ever launched
        assert shared.replay["shared"]
        assert shared.replay["per_worker"]["1"]["fleet_hits"] >= 1


class TestAdmissionPolicies:
    def serve_order(self, requests, admission):
        engine = ServingEngine(pool_size=1, config=CFG, admission=admission)
        report = engine.serve_online(requests)
        started = sorted(report.results, key=lambda r: r.start_cycle)
        return [r.request_id for r in started]

    def test_priority_orders_simultaneous_arrivals(self, rng):
        requests = gemm_batch(rng, 3)
        for request, priority in zip(requests, (2, 0, 1)):
            request.priority = priority
        assert self.serve_order(requests, "priority") == [1, 2, 0]

    def test_edf_orders_by_deadline(self, rng):
        requests = gemm_batch(rng, 3)
        for request, deadline in zip(requests, (30_000_000, 10_000_000, 20_000_000)):
            request.deadline_cycle = deadline
        assert self.serve_order(requests, "edf") == [1, 2, 0]

    def test_sjf_orders_by_estimated_cost(self, rng):
        small = gemm_batch(rng, 1, shape=(4, 4, 4))[0]
        big = gemm_batch(rng, 1, shape=(12, 12, 12))[0]
        big.request_id, small.request_id = 0, 1
        assert self.serve_order([big, small], "sjf") == [1, 0]
        assert estimate_service_cycles(big) > estimate_service_cycles(small)

    def test_fifo_is_the_default(self):
        engine = ServingEngine(pool_size=1, config=CFG)
        assert engine.admission == AdmissionPolicy.coerce("fifo")
        assert engine.admission.immediate

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            ServingEngine(pool_size=1, config=CFG, admission="lifo")

    def test_admission_recorded_in_report(self, rng):
        engine = ServingEngine(pool_size=1, config=CFG, admission="edf")
        report = engine.serve_online(gemm_batch(rng, 2))
        assert report.admission == "edf"
        assert report.as_dict()["admission"] == "edf"


class TestProcessClamp:
    def test_clamp_warns_and_records_requested_count(self, rng):
        with pytest.warns(RuntimeWarning, match="exceeds pool_size"):
            engine = ServingEngine(pool_size=2, config=CFG, processes=8)
        try:
            assert engine.processes == 2
            assert engine.requested_processes == 8
            report = engine.serve(gemm_batch(rng, 2))
        finally:
            engine.close()
        assert report.processes == 2
        assert report.requested_processes == 8
        payload = report.as_dict()
        assert payload["processes"] == 2
        assert payload["requested_processes"] == 8

    def test_no_warning_when_processes_fit(self, rng):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine = ServingEngine(pool_size=2, config=CFG, processes=2)
        engine.close()
