"""Scheduler lifecycle tests: stop wakeup, restart, drain, shard merging."""

import numpy as np
import pytest

from repro.baselines.reference import ref_leaky_relu
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem
from repro.runtime.phases import PhaseBreakdown
from repro.runtime.scheduler import KernelScheduler
from repro.runtime.kernel_lib import KernelSpec

CFG = ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=4, main_memory_kib=512)


def scheduler_process(system):
    return next(p for p in system.sim._processes if p.name == "crt.scheduler")


class TestStopWakeup:
    def test_stop_wakes_parked_scheduler(self):
        """Regression: stop() used to be observed only after one more kernel
        arrived; a parked run_forever must exit on the stop wakeup alone."""
        system = ArcaneSystem(CFG)
        system.sim.run()  # park the scheduler on the empty queue
        assert not scheduler_process(system).finished
        process = system.llc.runtime.stop()
        system.sim.run()  # no kernel ever arrives
        assert process.finished

    def test_stop_exits_on_current_cycle(self):
        system = ArcaneSystem(CFG)
        system.sim.run()
        stopped_at = system.sim.now
        process = system.llc.runtime.stop()
        system.sim.run()
        assert process.finished
        assert system.sim.now == stopped_at  # same-cycle exit, no extra delay

    def test_stop_after_work_then_restart(self, rng):
        """A stopped runtime can restart and serve kernels again."""
        system = ArcaneSystem(CFG)
        x = rng.integers(-50, 50, (4, 8)).astype(np.int32)
        mx = system.place_matrix(x)
        out = system.alloc_matrix(x.shape, np.int32)
        with system.program() as prog:
            prog.xmr(0, mx).xmr(1, out)
            prog.leaky_relu(dest=1, src=0, alpha=0)
        process = system.llc.runtime.stop()
        system.sim.run()
        assert process.finished

        system.llc.runtime.start()  # rearm + relaunch
        out2 = system.alloc_matrix(x.shape, np.int32)
        with system.program() as prog:
            prog.xmr(2, mx).xmr(3, out2)
            prog.leaky_relu(dest=3, src=2, alpha=1)
        assert np.array_equal(system.read_matrix(out2), ref_leaky_relu(x, 1))

    def test_stop_start_back_to_back_leaves_one_loop(self, rng):
        """Regression: stop() immediately followed by start() (no simulation
        in between) must retire the old parked loop, not leave two live
        schedulers double-popping the same queue."""
        system = ArcaneSystem(CFG)
        system.sim.run()  # park the first loop
        system.llc.runtime.stop()
        system.llc.runtime.start()  # rearm before the old loop ever woke
        x = rng.integers(-50, 50, (4, 8)).astype(np.int32)
        mx = system.place_matrix(x)
        outs = [system.alloc_matrix(x.shape, np.int32) for _ in range(3)]
        with system.program() as prog:
            prog.xmr(0, mx)
            for i, out in enumerate(outs):
                prog.xmr(1, out)
                prog.leaky_relu(dest=1, src=0, alpha=0)
        for out in outs:
            assert np.array_equal(system.read_matrix(out), ref_leaky_relu(x, 0))
        # the superseded loop exited (and was pruned); exactly one serves
        loops = [p for p in system.sim._processes if p.name == "crt.scheduler"]
        assert len(loops) == 1 and not loops[0].finished

    def test_idle_parks_leave_no_residue(self, rng):
        """Regression: each idle park used to allocate an any_of event plus
        a never-woken stop waiter; a long-lived serving loop must not
        accumulate parked processes per request."""
        system = ArcaneSystem(CFG)
        x = rng.integers(-8, 8, (3 * 12, 12)).astype(np.int8)
        f = rng.integers(-2, 3, (9, 3)).astype(np.int8)
        for _ in range(5):
            system.run_conv_layer(x, f)
            system.reset_heap()
        # only the single parked scheduler waits on the queue's push event
        assert len(system.llc.runtime.queue.pushed_event._waiters) == 1

    def test_stop_idempotent_and_without_start(self):
        system = ArcaneSystem(CFG)
        assert system.llc.runtime.stop() is not None
        assert system.llc.runtime.stop() is None  # already stopped

    def test_inflight_visible_between_pop_and_claim(self, rng):
        """The pop→claim window must read as busy, not idle (drain/reset
        would otherwise conclude all work is done mid-schedule)."""
        system = ArcaneSystem(CFG)
        scheduler = system.llc.runtime.scheduler
        observed = []

        def probe():
            # sample just after the scheduler popped (SCHEDULE_CYCLES window)
            while not scheduler.completed:
                observed.append(
                    (scheduler.inflight is not None,
                     len(system.llc.runtime.pending_kernels()),
                     any(scheduler.dispatcher.owner(v) is not None
                         for v in range(scheduler.dispatcher.n_vpus)))
                )
                yield 100
            return None

        x = rng.integers(-50, 50, (4, 8)).astype(np.int32)
        mx = system.place_matrix(x)
        out = system.alloc_matrix(x.shape, np.int32)
        system.sim.process(probe(), name="probe")
        with system.program() as prog:
            prog.xmr(0, mx).xmr(1, out)
            prog.leaky_relu(dest=1, src=0, alpha=0)
        # at least one sample saw "inflight but queue empty and no VPU owner"
        assert any(inflight and not queued and not busy
                   for inflight, queued, busy in observed)


class TestDrain:
    def test_drain_returns_immediately_when_idle(self):
        system = ArcaneSystem(CFG)
        before = system.sim.now
        system.sim.run_process(system.llc.runtime.drain())
        assert system.sim.now == before

    def test_drain_waits_for_queued_kernels(self, rng):
        system = ArcaneSystem(CFG)
        x = rng.integers(-50, 50, (4, 8)).astype(np.int32)
        mx = system.place_matrix(x)
        out = system.alloc_matrix(x.shape, np.int32)

        def offload_then_drain():
            for _, args in prog._ops:
                yield from system.llc.bridge.offload(args[0])
            yield from system.llc.runtime.drain()
            return system.sim.now

        prog = system.program()
        prog.xmr(0, mx).xmr(1, out)
        prog.leaky_relu(dest=1, src=0, alpha=0)
        drained_at = system.sim.run_process(offload_then_drain())
        assert system.llc.runtime.scheduler.completed  # kernel really ran
        assert drained_at >= KernelScheduler.SCHEDULE_CYCLES
        assert np.array_equal(system.read_matrix(out), ref_leaky_relu(x, 0))


class TestShardPhaseMerging:
    def make_breakdown(self, **cycles):
        breakdown = PhaseBreakdown()
        for phase, amount in cycles.items():
            breakdown.add(phase, amount)
        return breakdown

    def test_canonical_phases_merge_sum_and_max(self):
        shards = [
            self.make_breakdown(preamble=10, allocation=100, compute=500, writeback=40),
            self.make_breakdown(preamble=12, allocation=90, compute=700, writeback=50),
        ]
        merged = KernelScheduler._merge_shard_phases(shards)
        assert merged.cycles["preamble"] == 22
        assert merged.cycles["allocation"] == 190
        assert merged.cycles["compute"] == 700  # concurrent: slowest shard
        assert merged.cycles["writeback"] == 90

    def test_custom_phases_not_dropped(self):
        """Regression: phases outside the four hard-coded names used to be
        silently discarded, under-reporting multi-VPU cycle totals."""
        shards = [
            self.make_breakdown(compute=100, warmup=7),
            self.make_breakdown(compute=80, warmup=9, cooldown=3),
        ]
        merged = KernelScheduler._merge_shard_phases(shards)
        assert merged.cycles["warmup"] == 16
        assert merged.cycles["cooldown"] == 3
        assert merged.cycles["compute"] == 100
        assert merged.total == 100 + 16 + 3

    def test_empty_shard_list(self):
        merged = KernelScheduler._merge_shard_phases([])
        assert merged.total == 0

    def test_multi_vpu_run_keeps_custom_phase_cycles(self, rng):
        """End-to-end: a sharded kernel recording a custom phase reports the
        union of all shards' phases in the merged breakdown."""
        config = ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=4,
                              main_memory_kib=512, multi_vpu=True)
        system = ArcaneSystem(config)

        def preamble(request, matrix_map):
            return None, [], {}

        def body(context, kernel, shard=(0, 1)):
            context.phases.add("warmup", 11)
            context.phases.add("compute", 100 + 10 * shard[0])
            yield 5

        system.llc.runtime.library.register(
            KernelSpec(func5=9, name="custom_phases", preamble=preamble, body=body)
        )
        with system.program() as prog:
            prog.xmk(9, "w")
        breakdown = next(iter(system.last_report.per_kernel.values()))
        assert breakdown.cycles["warmup"] == 2 * 11  # summed across shards
        assert breakdown.cycles["compute"] == 110  # max across shards
