"""End-to-end parity tests for the compiled kernel library.

Every compiled kernel runs through the full stack (program builder ->
bridge -> decoder -> scheduler -> VPU) and must match the NumPy golden
models bit-for-bit.  The compiled GeMM is additionally held to the
handwritten ``xmk0`` twin: identical results at simulated cycle counts
within 10% (it is in fact *faster* once strip-mined, because the
direct-mapped row cache keeps partial strips resident instead of
re-streaming them)."""

import numpy as np
import pytest

from repro.baselines.reference import ref_conv2d, ref_gemm
from repro.compiler import (
    FUNC5_CGEMM,
    FUNC5_DWCONV2D,
    FUNC5_EWISE_ADD,
    FUNC5_EWISE_MUL,
    FUNC5_FC,
    FUNC5_ROWSUM,
    ShapeError,
    install_compiled,
    offload_compiled,
)
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem

SMALL = ArcaneConfig(n_vpus=4, lanes=4, line_bytes=256, vpu_kib=8, main_memory_kib=512)

DTYPES = [np.int8, np.int16, np.int32]


def make_system(**overrides) -> ArcaneSystem:
    config = ArcaneConfig(**{**SMALL.__dict__, **overrides})
    system = ArcaneSystem(config)
    install_compiled(system.llc.runtime.library)
    return system


def run_compiled(system, func5, sources, dest_shape, dtype, params=()):
    handles = [system.place_matrix(s) for s in sources]
    out = system.alloc_matrix(dest_shape, dtype)
    with system.program() as prog:
        for register, handle in enumerate(handles):
            prog.xmr(register, handle)
        prog.xmr(len(handles), out)
        offload_compiled(
            prog, func5, out.etype.suffix,
            dest=len(handles), sources=list(range(len(handles))), params=params,
        )
    return system.read_matrix(out), system.last_report


class TestCompiledGemm:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matches_reference(self, rng, dtype):
        m, k, n = 5, 7, 6
        a = rng.integers(-8, 8, (m, k)).astype(dtype)
        b = rng.integers(-8, 8, (k, n)).astype(dtype)
        c = rng.integers(-8, 8, (m, n)).astype(dtype)
        got, _ = run_compiled(
            make_system(), FUNC5_CGEMM, [a, b, c], (m, n), dtype, params=[2, -1]
        )
        assert np.array_equal(got, ref_gemm(a, b, c, 2, -1))

    @pytest.mark.parametrize("shape", [(5, 7, 6), (8, 40, 12)])
    def test_parity_with_handwritten_xmk0(self, rng, shape):
        """Bit-exact vs xmk0 and within 10% of its cycle count (or better).

        (8, 40, 12) forces strip-mining on the 256-byte-line config.
        """
        m, k, n = shape
        a = rng.integers(-8, 8, (m, k)).astype(np.int16)
        b = rng.integers(-8, 8, (k, n)).astype(np.int16)
        c = rng.integers(-8, 8, (m, n)).astype(np.int16)

        hand_system = ArcaneSystem(SMALL)
        ma, mb, mc = (hand_system.place_matrix(x) for x in (a, b, c))
        md = hand_system.alloc_matrix((m, n), np.int16)
        with hand_system.program() as prog:
            prog.xmr(0, ma).xmr(1, mb).xmr(2, mc).xmr(3, md)
            prog.gemm(dest=3, a=0, b=1, c=2, alpha=2, beta=-1, suffix="h")
        hand = hand_system.read_matrix(md)
        hand_cycles = hand_system.last_report.total_cycles

        got, report = run_compiled(
            make_system(), FUNC5_CGEMM, [a, b, c], (m, n), np.int16, params=[2, -1]
        )
        assert np.array_equal(got, hand)
        assert report.total_cycles <= hand_cycles * 1.10

    def test_beta_zero_skips_addend(self, rng):
        a = rng.integers(-4, 4, (3, 3)).astype(np.int32)
        b = rng.integers(-4, 4, (3, 3)).astype(np.int32)
        c = rng.integers(-4, 4, (3, 3)).astype(np.int32)
        got, _ = run_compiled(
            make_system(), FUNC5_CGEMM, [a, b, c], (3, 3), np.int32, params=[1, 0]
        )
        assert np.array_equal(got, ref_gemm(a, b, c, 1, 0))

    def test_wraparound_int8(self):
        a = np.full((2, 4), 100, dtype=np.int8)
        b = np.full((4, 2), 100, dtype=np.int8)
        c = np.zeros((2, 2), dtype=np.int8)
        got, _ = run_compiled(
            make_system(), FUNC5_CGEMM, [a, b, c], (2, 2), np.int8, params=[1, 0]
        )
        assert np.array_equal(got, ref_gemm(a, b, c, 1, 0))

    def test_sharded_multi_vpu(self, rng):
        m, k, n = 12, 10, 8
        a = rng.integers(-8, 8, (m, k)).astype(np.int16)
        b = rng.integers(-8, 8, (k, n)).astype(np.int16)
        c = rng.integers(-8, 8, (m, n)).astype(np.int16)
        got, _ = run_compiled(
            make_system(multi_vpu=True), FUNC5_CGEMM, [a, b, c], (m, n),
            np.int16, params=[2, -1],
        )
        assert np.array_equal(got, ref_gemm(a, b, c, 2, -1))

    def test_shape_mismatch_raises(self, rng):
        a = rng.integers(-4, 4, (3, 4)).astype(np.int32)
        b = rng.integers(-4, 4, (5, 3)).astype(np.int32)  # inner dim differs
        c = rng.integers(-4, 4, (3, 3)).astype(np.int32)
        with pytest.raises(ShapeError, match="'b' rows"):
            run_compiled(
                make_system(), FUNC5_CGEMM, [a, b, c], (3, 3), np.int32, params=[1, 0]
            )

    def test_element_type_mismatch_raises(self, rng):
        system = make_system()
        a = system.place_matrix(rng.integers(-4, 4, (3, 3)).astype(np.int32))
        b = system.place_matrix(rng.integers(-4, 4, (3, 3)).astype(np.int16))
        c = system.place_matrix(rng.integers(-4, 4, (3, 3)).astype(np.int32))
        out = system.alloc_matrix((3, 3), np.int32)
        with pytest.raises(ValueError, match="bound as"):
            with system.program() as prog:
                prog.xmr(0, a).xmr(1, b).xmr(2, c).xmr(3, out)
                offload_compiled(prog, FUNC5_CGEMM, "w", dest=3,
                                 sources=[0, 1, 2], params=[1, 0])


class TestCompiledDepthwiseConv:
    def test_single_channel_matches_conv2d(self, rng):
        x = rng.integers(-6, 6, (9, 10)).astype(np.int16)
        f = rng.integers(-3, 3, (3, 3)).astype(np.int16)
        got, _ = run_compiled(make_system(), FUNC5_DWCONV2D, [x, f], (7, 8), np.int16)
        assert np.array_equal(got, ref_conv2d(x, f))

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_multi_channel(self, rng, dtype):
        channels, height, width, ksize = 3, 6, 8, 3
        x = rng.integers(-6, 6, (channels * height, width)).astype(dtype)
        f = rng.integers(-3, 3, (channels * ksize, ksize)).astype(dtype)
        expected = np.vstack([
            ref_conv2d(
                x[ch * height : (ch + 1) * height], f[ch * ksize : (ch + 1) * ksize]
            )
            for ch in range(channels)
        ])
        got, _ = run_compiled(
            make_system(), FUNC5_DWCONV2D, [x, f], expected.shape, dtype
        )
        assert np.array_equal(got, expected)

    def test_sharded_multi_vpu(self, rng):
        channels, height, width, ksize = 4, 5, 7, 2
        x = rng.integers(-6, 6, (channels * height, width)).astype(np.int8)
        f = rng.integers(-3, 3, (channels * ksize, ksize)).astype(np.int8)
        expected = np.vstack([
            ref_conv2d(
                x[ch * height : (ch + 1) * height], f[ch * ksize : (ch + 1) * ksize]
            )
            for ch in range(channels)
        ])
        got, _ = run_compiled(
            make_system(multi_vpu=True), FUNC5_DWCONV2D, [x, f], expected.shape,
            np.int8,
        )
        assert np.array_equal(got, expected)

    def test_channel_divisibility_enforced(self, rng):
        x = rng.integers(-6, 6, (10, 8)).astype(np.int16)
        f = rng.integers(-3, 3, (4, 3)).astype(np.int16)  # 4 rows not divisible by 3
        with pytest.raises(ShapeError, match="cannot split"):
            run_compiled(make_system(), FUNC5_DWCONV2D, [x, f], (6, 6), np.int16)


class TestCompiledFullyConnected:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matches_numpy(self, rng, dtype):
        k, n = 20, 9
        x = rng.integers(-8, 8, (1, k)).astype(dtype)
        w = rng.integers(-8, 8, (k, n)).astype(dtype)
        bias = rng.integers(-8, 8, (1, n)).astype(dtype)
        expected = (
            x.astype(np.int64) @ w.astype(np.int64) + bias.astype(np.int64)
        ).astype(dtype)
        got, _ = run_compiled(make_system(), FUNC5_FC, [x, w, bias], (1, n), dtype)
        assert np.array_equal(got, expected)

    def test_strip_mined_weights(self, rng):
        """K = 40 exceeds the free-register budget on the small config."""
        k, n = 40, 12
        x = rng.integers(-8, 8, (1, k)).astype(np.int16)
        w = rng.integers(-8, 8, (k, n)).astype(np.int16)
        bias = rng.integers(-8, 8, (1, n)).astype(np.int16)
        expected = (
            x.astype(np.int64) @ w.astype(np.int64) + bias.astype(np.int64)
        ).astype(np.int16)
        got, _ = run_compiled(make_system(), FUNC5_FC, [x, w, bias], (1, n), np.int16)
        assert np.array_equal(got, expected)


class TestCompiledElementwise:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_add(self, rng, dtype):
        x = rng.integers(-100, 100, (6, 11)).astype(dtype)
        y = rng.integers(-100, 100, (6, 11)).astype(dtype)
        got, _ = run_compiled(make_system(), FUNC5_EWISE_ADD, [x, y], x.shape, dtype)
        assert np.array_equal(got, (x.astype(np.int64) + y.astype(np.int64)).astype(dtype))

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_mul_wraps(self, rng, dtype):
        """Exercises the vmul.vv ISA extension, including wrap-around."""
        x = rng.integers(-100, 100, (6, 11)).astype(dtype)
        y = rng.integers(-100, 100, (6, 11)).astype(dtype)
        got, _ = run_compiled(make_system(), FUNC5_EWISE_MUL, [x, y], x.shape, dtype)
        assert np.array_equal(got, (x.astype(np.int64) * y.astype(np.int64)).astype(dtype))

    def test_row_too_long_for_register(self):
        x = np.ones((2, 100), dtype=np.int32)  # 100 > 64 int32 per 256B line
        with pytest.raises(ValueError, match="exceed"):
            run_compiled(make_system(), FUNC5_EWISE_ADD, [x, x], x.shape, np.int32)


class TestCompiledRowSum:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matches_numpy(self, rng, dtype):
        x = rng.integers(-100, 100, (7, 13)).astype(dtype)
        expected = x.astype(np.int64).sum(axis=1).astype(dtype).reshape(-1, 1)
        got, _ = run_compiled(make_system(), FUNC5_ROWSUM, [x], (7, 1), dtype)
        assert np.array_equal(got, expected)

    def test_sharded_multi_vpu(self, rng):
        x = rng.integers(-100, 100, (16, 10)).astype(np.int16)
        expected = x.astype(np.int64).sum(axis=1).astype(np.int16).reshape(-1, 1)
        got, _ = run_compiled(
            make_system(multi_vpu=True), FUNC5_ROWSUM, [x], (16, 1), np.int16
        )
        assert np.array_equal(got, expected)


class TestCustomCompiledKernel:
    def test_param_colliding_with_generated_strip_name(self, rng):
        """Regression: a param named 'k_o' must survive strip-mining (the
        generated strip counter used to shadow it in the runtime env)."""
        from repro.compiler import (
            Accum, Assign, Const, KernelProgram, Loop, Operand, Schedule, Sym,
            compile_kernel,
        )

        K, N, k_o = Sym("K"), Sym("N"), Sym("k_o")
        j, k = Sym("j"), Sym("k")
        d = Operand("d", (Const(1), N), out=True)
        x = Operand("x", (K, N))
        program = KernelProgram(
            "scaled_colsum", [d, x],
            [
                Loop(j, N, [Assign(d[0, j], Const(0))]),
                Loop(k, K, [Loop(j, N, [Accum(d[0, j], k_o * x[k, j])])]),
            ],
            params=["k_o"],
        )
        spec = compile_kernel(Schedule(program).strip_mine("k").vectorize("j"), 9)
        system = ArcaneSystem(SMALL)
        system.llc.runtime.library.register(spec)
        values = rng.integers(-8, 8, (10, 6)).astype(np.int16)
        hx = system.place_matrix(values)
        out = system.alloc_matrix((1, 6), np.int16)
        with system.program() as prog:
            prog.xmr(0, hx).xmr(1, out)
            offload_compiled(prog, 9, "h", dest=1, sources=[0], params=[3])
        expected = (3 * values.astype(np.int64).sum(axis=0)).astype(np.int16)
        assert np.array_equal(system.read_matrix(out)[0], expected)


class TestLibraryRegistration:
    def test_installs_six_kernels_above_table1(self):
        system = make_system()
        names = system.llc.runtime.library.names()
        assert names[FUNC5_CGEMM] == "cgemm"
        assert names[FUNC5_DWCONV2D] == "dwconv2d"
        assert names[FUNC5_FC] == "fc"
        assert names[FUNC5_EWISE_ADD] == "ewise_add"
        assert names[FUNC5_EWISE_MUL] == "ewise_mul"
        assert names[FUNC5_ROWSUM] == "rowsum"
        assert set(range(5)) <= set(names)  # Table I kernels untouched

    def test_double_install_collides_loudly(self):
        system = make_system()
        with pytest.raises(ValueError, match="replace=True"):
            install_compiled(system.llc.runtime.library)

    def test_offload_rejects_excess_operands(self):
        system = make_system()
        prog = system.program()
        with pytest.raises(ValueError, match="at most two"):
            offload_compiled(prog, FUNC5_CGEMM, "h", dest=3,
                             sources=[0, 1, 2], params=[1, 0, 99])
        with pytest.raises(ValueError, match="at most three"):
            offload_compiled(prog, FUNC5_CGEMM, "h", dest=4,
                             sources=[0, 1, 2, 3], params=[1, 0])
