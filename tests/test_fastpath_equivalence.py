"""Fast-path equivalence suite: replayed kernels must be bit-exact.

Every test pairs a fast-path system (kernel replay cache on, the default)
with a slow-path twin (``fastpath=False``) driven through the identical
request sequence, and requires *everything observable* to match: outputs,
``RunReport`` cycle counts, phase breakdowns and stats counters.  The
replay-cache bookkeeping itself (hits / misses / recorded / bypassed)
lives in ``RunReport.replay`` precisely so the simulated-world metrics
can be compared wholesale.
"""

import numpy as np
import pytest

from repro.compiler import (
    FUNC5_CGEMM,
    FUNC5_DWCONV2D,
    FUNC5_EWISE_ADD,
    FUNC5_EWISE_MUL,
    FUNC5_FC,
    FUNC5_ROWSUM,
)
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem
from repro.runtime.kernel_lib import KernelSpec
from repro.runtime.kernels.common import conv_output_shape, pool_output_shape
from repro.runtime.replay import ReplayCache
from repro.serve import (
    ServingEngine,
    SystemWorker,
    conv_layer_request,
    expected_output,
    gemm_request,
    kernel_request,
)

CFG = ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=8, main_memory_kib=512)
SLOW = CFG.with_fastpath(False)


@pytest.fixture(autouse=True)
def _fastpath_available(monkeypatch):
    """These tests compare the fast path against the slow path, so an
    ambient ``ARCANE_NO_FASTPATH=1`` (useful for sweeping the rest of the
    suite in slow mode) must not leak in."""
    monkeypatch.delenv("ARCANE_NO_FASTPATH", raising=False)


def assert_reports_equal(fast, slow, label=""):
    assert fast.total_cycles == slow.total_cycles, f"{label}: total_cycles differ"
    assert fast.host_cycles == slow.host_cycles, f"{label}: host_cycles differ"
    assert fast.stats == slow.stats, f"{label}: stats counters differ"
    assert fast.breakdown.cycles == slow.breakdown.cycles, f"{label}: breakdown differs"
    fast_per = {k: b.cycles for k, b in fast.per_kernel.items()}
    slow_per = {k: b.cycles for k, b in slow.per_kernel.items()}
    assert fast_per == slow_per, f"{label}: per-kernel breakdowns differ"
    assert fast.load_values == slow.load_values, f"{label}: load values differ"


def paired_workers():
    return SystemWorker(0, CFG), SystemWorker(0, SLOW)


def run_both(request, fast_worker, slow_worker):
    fast = fast_worker.run(request)
    slow = slow_worker.run(request)
    assert np.array_equal(fast.output, slow.output)
    assert fast.sim_cycles == slow.sim_cycles
    for fast_report, slow_report in zip(fast.reports, slow.reports):
        assert_reports_equal(fast_report, slow_report, request.kind)
    return fast, slow


class TestRepeatedLaunches:
    def test_repeated_gemm_hits_and_stays_bit_exact(self, rng):
        a = rng.integers(-6, 6, (10, 12)).astype(np.int16)
        b = rng.integers(-6, 6, (12, 8)).astype(np.int16)
        c = rng.integers(-6, 6, (10, 8)).astype(np.int16)
        fast_worker, slow_worker = paired_workers()
        results = []
        for i in range(4):
            request = gemm_request(i, a, b, c, alpha=2, beta=-1)
            fast, _ = run_both(request, fast_worker, slow_worker)
            results.append(fast)
        # first launch records, later identical launches replay
        assert results[0].reports[0].replay["misses"] == 1
        assert results[0].reports[0].replay["recorded"] == 1
        for result in results[1:]:
            assert result.reports[0].replay["hits"] == 1
        # the slow path must not even have a replay cache attached
        assert slow_worker.system.llc.runtime.replay_cache is None

    def test_data_change_misses_but_stays_correct(self, rng):
        fast_worker, slow_worker = paired_workers()
        for i in range(3):
            a = rng.integers(-6, 6, (6, 6)).astype(np.int16)
            b = rng.integers(-6, 6, (6, 6)).astype(np.int16)
            c = np.zeros((6, 6), dtype=np.int16)
            request = gemm_request(i, a, b, c, alpha=1, beta=0)
            fast, _ = run_both(request, fast_worker, slow_worker)
            assert np.array_equal(fast.output, expected_output(request))
            assert fast.reports[0].replay["hits"] == 0
            assert fast.reports[0].replay["misses"] == 1


def _run_gemm(system, a, b, c, alpha, beta):
    ma, mb, mc = (system.place_matrix(m) for m in (a, b, c))
    out = system.alloc_matrix((a.shape[0], b.shape[1]), a.dtype)
    with system.program() as prog:
        prog.xmr(0, ma).xmr(1, mb).xmr(2, mc).xmr(3, out)
        prog.gemm(dest=3, a=0, b=1, c=2, alpha=alpha, beta=beta,
                  suffix=ma.etype.suffix)
    return system.read_matrix(out), system.last_report


def _run_leaky_relu(system, x):
    mx = system.place_matrix(x)
    out = system.alloc_matrix(x.shape, x.dtype)
    with system.program() as prog:
        prog.xmr(0, mx).xmr(1, out)
        prog.leaky_relu(dest=1, src=0, alpha=3, suffix=mx.etype.suffix)
    return system.read_matrix(out), system.last_report


def _run_maxpool(system, x):
    shape = pool_output_shape(x.shape[0], x.shape[1], 2, 2)
    mx = system.place_matrix(x)
    out = system.alloc_matrix(shape, x.dtype)
    with system.program() as prog:
        prog.xmr(0, mx).xmr(1, out)
        prog.maxpool(dest=1, src=0, window=2, stride=2, suffix=mx.etype.suffix)
    return system.read_matrix(out), system.last_report


def _run_conv2d(system, x, f):
    shape = conv_output_shape(x.shape[0], x.shape[1], f.shape[0])
    mx, mf = system.place_matrix(x), system.place_matrix(f)
    out = system.alloc_matrix(shape, x.dtype)
    with system.program() as prog:
        prog.xmr(0, mx).xmr(1, mf).xmr(2, out)
        prog.conv2d(dest=2, src=0, flt=1, suffix=mx.etype.suffix)
    return system.read_matrix(out), system.last_report


HANDWRITTEN_CASES = {
    "gemm_beta0": lambda system, rng: _run_gemm(
        system,
        rng.integers(-6, 6, (7, 9)).astype(np.int16),
        rng.integers(-6, 6, (9, 11)).astype(np.int16),
        np.zeros((7, 11), dtype=np.int16),
        alpha=1, beta=0,
    ),
    "gemm_beta": lambda system, rng: _run_gemm(
        system,
        rng.integers(-6, 6, (7, 9)).astype(np.int32),
        rng.integers(-6, 6, (9, 5)).astype(np.int32),
        rng.integers(-6, 6, (7, 5)).astype(np.int32),
        alpha=3, beta=-2,
    ),
    "leaky_relu": lambda system, rng: _run_leaky_relu(
        system, rng.integers(-100, 100, (6, 14)).astype(np.int16)
    ),
    "maxpool": lambda system, rng: _run_maxpool(
        system, rng.integers(-50, 50, (8, 12)).astype(np.int16)
    ),
    "conv2d": lambda system, rng: _run_conv2d(
        system,
        rng.integers(-8, 8, (10, 10)).astype(np.int8),
        rng.integers(-3, 3, (3, 3)).astype(np.int8),
    ),
}


class TestAllKernelsBitExact:
    @pytest.mark.parametrize("name", sorted(HANDWRITTEN_CASES))
    def test_handwritten_kernel_replay_is_bit_exact(self, name, rng):
        runner = HANDWRITTEN_CASES[name]
        fast = ArcaneSystem(CFG)
        slow = ArcaneSystem(SLOW)
        for launch in range(3):
            seeded = np.random.default_rng(123)
            out_fast, rep_fast = runner(fast, seeded)
            seeded = np.random.default_rng(123)
            out_slow, rep_slow = runner(slow, seeded)
            assert np.array_equal(out_fast, out_slow), f"{name} launch {launch}"
            assert_reports_equal(rep_fast, rep_slow, f"{name} launch {launch}")
            fast.reset_heap()
            slow.reset_heap()
        # the second and third launches must have been replays, not re-runs
        assert fast.llc.runtime.replay_cache.stats["hits"] >= 2

    def test_conv_layer_prefetch_replay_is_bit_exact(self, rng):
        x = rng.integers(-8, 8, (3 * 14, 14)).astype(np.int8)
        f = rng.integers(-2, 3, (9, 3)).astype(np.int8)
        fast_worker, slow_worker = paired_workers()
        for i in range(3):
            run_both(conv_layer_request(i, x, f), fast_worker, slow_worker)

    @pytest.mark.parametrize(
        "func5,builder",
        [
            (FUNC5_CGEMM, lambda rng: ([
                rng.integers(-5, 5, (6, 8)).astype(np.int16),
                rng.integers(-5, 5, (8, 7)).astype(np.int16),
                rng.integers(-5, 5, (6, 7)).astype(np.int16),
            ], (6, 7), (2, 1))),
            (FUNC5_DWCONV2D, lambda rng: ([
                rng.integers(-6, 6, (2 * 8, 9)).astype(np.int16),
                rng.integers(-3, 3, (2 * 3, 3)).astype(np.int16),
            ], (2 * 6, 7), ())),
            (FUNC5_FC, lambda rng: ([
                rng.integers(-8, 8, (1, 24)).astype(np.int16),
                rng.integers(-8, 8, (24, 10)).astype(np.int16),
                rng.integers(-8, 8, (1, 10)).astype(np.int16),
            ], (1, 10), ())),
            (FUNC5_EWISE_ADD, lambda rng: ([
                rng.integers(-50, 50, (5, 13)).astype(np.int8),
                rng.integers(-50, 50, (5, 13)).astype(np.int8),
            ], (5, 13), ())),
            (FUNC5_EWISE_MUL, lambda rng: ([
                rng.integers(-10, 10, (4, 9)).astype(np.int32),
                rng.integers(-10, 10, (4, 9)).astype(np.int32),
            ], (4, 9), ())),
            (FUNC5_ROWSUM, lambda rng: ([
                rng.integers(-20, 20, (6, 15)).astype(np.int16),
            ], (6, 1), ())),
        ],
    )
    def test_compiled_kernel_replay_is_bit_exact(self, func5, builder, rng):
        inputs, out_shape, params = builder(rng)
        fast_worker, slow_worker = paired_workers()
        for i in range(3):
            request = kernel_request(i, func5, inputs, out_shape, params=params)
            fast, _ = run_both(request, fast_worker, slow_worker)
            assert np.array_equal(fast.output, expected_output(request))


class TestServingEquivalence:
    def _repeated_requests(self, rng, count=12):
        a = rng.integers(-6, 6, (8, 10)).astype(np.int16)
        b = rng.integers(-6, 6, (10, 6)).astype(np.int16)
        c = rng.integers(-6, 6, (8, 6)).astype(np.int16)
        x = rng.integers(-8, 8, (3 * 10, 10)).astype(np.int8)
        f = rng.integers(-2, 3, (6, 2)).astype(np.int8)
        requests = []
        for rid in range(count):
            if rid % 2:
                requests.append(conv_layer_request(rid, x, f))
            else:
                requests.append(gemm_request(rid, a, b, c, alpha=1, beta=1))
        return requests

    def test_offline_serving_bit_exact(self, rng):
        requests = self._repeated_requests(rng)
        fast = ServingEngine(pool_size=2, config=CFG)
        slow = ServingEngine(pool_size=2, config=SLOW)
        fast_report = fast.serve(requests, verify=True)
        slow_report = slow.serve(requests, verify=True)
        for fr, sr in zip(fast_report.results, slow_report.results):
            assert np.array_equal(fr.output, sr.output)
            assert fr.sim_cycles == sr.sim_cycles
            assert fr.worker == sr.worker
        assert fast_report.total_sim_cycles == slow_report.total_sim_cycles

    def test_online_serving_bit_exact(self, rng):
        requests = self._repeated_requests(rng)
        fast = ServingEngine(pool_size=2, config=CFG)
        slow = ServingEngine(pool_size=2, config=SLOW)
        fast_report = fast.serve_online(requests, traffic="poisson:25", seed=11,
                                        verify=True)
        slow_report = slow.serve_online(requests, traffic="poisson:25", seed=11,
                                        verify=True)
        for fr, sr in zip(fast_report.results, slow_report.results):
            assert np.array_equal(fr.output, sr.output)
            assert fr.arrival_cycle == sr.arrival_cycle
            assert fr.start_cycle == sr.start_cycle
            assert fr.completion_cycle == sr.completion_cycle
            assert fr.queue_delay_cycles == sr.queue_delay_cycles
            assert fr.latency_cycles == sr.latency_cycles


class TestLifecycleInvalidation:
    def test_replay_survives_free_matrix_relocation(self, rng):
        """Recordings are position-independent: shifting the operands to
        different heap addresses (via an interposed allocation and a
        free) must keep replaying bit-exactly."""
        a = rng.integers(-6, 6, (6, 8)).astype(np.int16)
        b = rng.integers(-6, 6, (8, 6)).astype(np.int16)
        c = rng.integers(-6, 6, (6, 6)).astype(np.int16)
        fast = ArcaneSystem(CFG)
        slow = ArcaneSystem(SLOW)

        def sequence(system):
            outs = []
            out, report = _run_gemm(system, a, b, c, 2, -1)
            outs.append((out, report))
            system.reset_heap()
            # shift the heap layout: a live spacer matrix relocates the
            # gemm operands, then gets freed mid-sequence
            spacer = system.place_matrix(
                np.ones((3, 40), dtype=np.int32), "spacer"
            )
            out, report = _run_gemm(system, a, b, c, 2, -1)
            outs.append((out, report))
            system.free_matrix(spacer)
            out, report = _run_gemm(system, a, b, c, 2, -1)
            outs.append((out, report))
            system.reset_heap()
            return outs

        fast_outs = sequence(fast)
        slow_outs = sequence(slow)
        for i, ((fo, fr), (so, sr)) in enumerate(zip(fast_outs, slow_outs)):
            assert np.array_equal(fo, so), f"step {i}"
            assert_reports_equal(fr, sr, f"step {i}")
        # The spacer-relocated launch replayed (same geometry + data at
        # new addresses).  The post-free launch may legitimately re-record
        # instead: leftover dirty lines steer the fewest-dirty policy to
        # the other VPU, and recordings are per-VPU by key.
        assert fast.llc.runtime.replay_cache.stats["hits"] >= 1

    def test_reprogramming_a_slot_invalidates_recordings(self, rng):
        a = rng.integers(-6, 6, (5, 5)).astype(np.int16)
        b = rng.integers(-6, 6, (5, 5)).astype(np.int16)
        c = np.zeros((5, 5), dtype=np.int16)
        system = ArcaneSystem(CFG)
        out, _ = _run_gemm(system, a, b, c, 1, 0)
        system.reset_heap()
        out2, _ = _run_gemm(system, a, b, c, 1, 0)
        system.reset_heap()
        assert system.llc.runtime.replay_cache.stats["hits"] == 1

        library = system.llc.runtime.library
        original = library.lookup(0)

        def zero_body(kc, kernel, shard=None):
            window = kc.claim(1)
            for i in range(kernel.dest.rows):
                yield from kc.vop(
                    __import__("repro.vpu.visa", fromlist=["VectorOpcode"])
                    .VectorOpcode.VCLEAR,
                    vd=window[0], vl=kernel.dest.cols,
                )
                yield from kc.store_rows(window, kernel.dest, i, 1)

        library.register(
            KernelSpec(0, "gemm_zero", original.preamble, zero_body), replace=True
        )
        out3, _ = _run_gemm(system, a, b, c, 1, 0)
        assert np.array_equal(out3, np.zeros((5, 5), dtype=np.int16))
        assert system.llc.runtime.replay_cache.stats["invalidated"] >= 1


class TestDestReadingKernels:
    def test_dest_data_is_part_of_the_key(self, rng):
        """A custom kernel may load and branch on its *destination*
        region (read-modify-write).  Changing only the dest data must be
        a cache miss — never a replay against a stale stream."""
        from repro.runtime.kernels.gemm import gemm_preamble
        from repro.vpu.visa import VectorOpcode

        def double_if_first_nonzero(kc, kernel, shard=None):
            # loads dest row 0, reads element 0, and branches on it
            window = kc.claim(1)
            dest = kernel.dest
            yield from kc.load_rows(window, dest, 0, 1)
            first = yield from kc.read_element(window[0], 0)
            if first != 0:
                yield from kc.vop(
                    VectorOpcode.VADD_VS, vd=window[0], vs1=window[0],
                    scalar=first, vl=dest.cols,
                )
            yield from kc.store_rows(window, dest, 0, 1)

        a = rng.integers(-4, 4, (4, 4)).astype(np.int16)  # sources held fixed
        outs = {}
        for fastpath in (True, False):
            system = ArcaneSystem(CFG.with_fastpath(fastpath))
            system.llc.runtime.library.register(
                KernelSpec(9, "rmw", gemm_preamble, double_if_first_nonzero)
            )
            outs[fastpath] = []
            for first_value in (5, 0, 7):
                d = np.full((4, 4), first_value, dtype=np.int16)
                ma = system.place_matrix(a)
                md = system.place_matrix(d)
                from repro.isa.xmnmc import pack_pair

                with system.program() as prog:
                    prog.xmr(0, ma).xmr(1, ma).xmr(2, ma).xmr(3, md)
                    prog.xmk(9, "h", rs1=pack_pair(1, 0),
                             rs2=pack_pair(2, 3), rs3=pack_pair(0, 1))
                outs[fastpath].append(
                    (system.read_matrix(md), system.last_report.total_cycles)
                )
                system.reset_heap()
        for (fast_out, fast_cycles), (slow_out, slow_cycles) in zip(
            outs[True], outs[False]
        ):
            assert np.array_equal(fast_out, slow_out)
            assert fast_cycles == slow_cycles


class TestFastpathSwitches:
    def test_env_var_disables_fastpath(self, monkeypatch):
        monkeypatch.setenv("ARCANE_NO_FASTPATH", "1")
        system = ArcaneSystem(CFG)
        assert system.llc.runtime.replay_cache is None

    def test_constructor_flag_disables_fastpath(self):
        assert ArcaneSystem(CFG, fastpath=False).llc.runtime.replay_cache is None
        assert ArcaneSystem(SLOW).llc.runtime.replay_cache is None
        assert ArcaneSystem(CFG).llc.runtime.replay_cache is not None

    def test_tracing_disables_fastpath(self):
        assert ArcaneSystem(CFG, trace=True).llc.runtime.replay_cache is None

    def test_disabled_fastpath_reports_empty_replay_block(self, rng):
        a = rng.integers(-4, 4, (4, 4)).astype(np.int16)
        system = ArcaneSystem(SLOW)
        _, report = _run_gemm(system, a, a, np.zeros((4, 4), np.int16), 1, 0)
        assert report.replay == {}


class TestReplayCacheMechanics:
    def test_capacity_bound_evicts_oldest(self):
        system = ArcaneSystem(CFG)
        cache = ReplayCache(system.llc.runtime.library, capacity=2)
        from repro.runtime.replay import Recording

        for key in ("k1", "k2", "k3"):
            cache.store(key, Recording(0, []))
        assert len(cache) == 2
        assert cache.lookup("k1") is None
        assert cache.lookup("k3") is not None

    def test_lru_refresh_protects_hot_entries(self):
        system = ArcaneSystem(CFG)
        cache = ReplayCache(system.llc.runtime.library, capacity=2)
        from repro.runtime.replay import Recording

        cache.store("hot", Recording(0, []))
        cache.store("cold1", Recording(0, []))
        assert cache.lookup("hot") is not None  # refreshes recency
        cache.store("cold2", Recording(0, []))  # evicts cold1, not hot
        assert cache.lookup("hot") is not None
        assert cache.lookup("cold1") is None

    def test_environment_mismatch_bypasses_instead_of_replaying(self, rng):
        """A perturbed VRF free list must route identical launches down
        the slow path (bypassed), still bit-exact vs. an identically
        perturbed slow system."""
        a = rng.integers(-6, 6, (5, 7)).astype(np.int16)
        b = rng.integers(-6, 6, (7, 5)).astype(np.int16)
        c = np.zeros((5, 5), dtype=np.int16)
        fast = ArcaneSystem(CFG)
        slow = ArcaneSystem(SLOW)
        for system in (fast, slow):
            out, _ = _run_gemm(system, a, b, c, 1, 0)
            system.reset_heap()
        # perturb both systems identically: pin one vector register on
        # every VPU so the free list no longer matches the recording
        for system in (fast, slow):
            for vpu_index in range(system.config.n_vpus):
                system.llc.runtime.allocator.claim(vpu_index, 1)
        out_fast, rep_fast = _run_gemm(fast, a, b, c, 1, 0)
        out_slow, rep_slow = _run_gemm(slow, a, b, c, 1, 0)
        assert np.array_equal(out_fast, out_slow)
        assert_reports_equal(rep_fast, rep_slow, "perturbed")
        assert rep_fast.replay["bypassed"] == 1
        assert rep_fast.replay["hits"] == 0
