"""Tests for the event-driven simulation kernel."""

import pytest

from repro.sim.kernel import Event, Simulator, SimulationError


def test_simple_delay():
    sim = Simulator()
    log = []

    def proc():
        yield 5
        log.append(sim.now)
        yield 3
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [5, 8]


def test_fifo_order_same_cycle():
    sim = Simulator()
    order = []

    def make(name):
        def proc():
            yield 10
            order.append(name)
        return proc

    for name in "abc":
        sim.process(make(name)())
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_wakes_waiters():
    sim = Simulator()
    gate = sim.event("gate")
    log = []

    def waiter():
        payload = yield gate
        log.append((sim.now, payload))

    def firer():
        yield 7
        gate.fire("go")

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert log == [(7, "go")]


def test_fired_event_wakes_late_waiter_immediately():
    sim = Simulator()
    gate = sim.event()
    gate.fire(123)
    log = []

    def late():
        yield 4
        value = yield gate
        log.append((sim.now, value))

    sim.process(late())
    sim.run()
    assert log == [(4, 123)]


def test_event_reset_allows_refire():
    sim = Simulator()
    gate = sim.event()
    gate.fire()
    gate.reset()
    assert not gate.fired
    gate.fire("again")
    assert gate.payload == "again"


def test_event_reset_with_waiters_rejected():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        yield gate

    sim.process(waiter())
    sim.run(until=0)
    with pytest.raises(SimulationError):
        gate.reset()


def test_wait_for_process_result():
    sim = Simulator()

    def child():
        yield 9
        return "done"

    def parent():
        result = yield sim.process(child())
        return (sim.now, result)

    assert sim.run_process(parent()) == (9, "done")


def test_negative_delay_rejected():
    sim = Simulator()

    def bad():
        yield -1

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_bool_yield_rejected():
    sim = Simulator()

    def bad():
        yield True

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_unsupported_yield_rejected():
    sim = Simulator()

    def bad():
        yield "nope"

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_pauses_clock():
    sim = Simulator()

    def proc():
        yield 100

    sim.process(proc())
    sim.run(until=40)
    assert sim.now == 40
    sim.run()
    assert sim.now == 100


def test_all_of_waits_for_every_event():
    sim = Simulator()
    events = [sim.event(f"e{i}") for i in range(3)]
    combined = sim.all_of(events)
    log = []

    def waiter():
        yield combined
        log.append(sim.now)

    def firer():
        for i, event in enumerate(events):
            yield 10
            event.fire()

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert log == [30]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    assert sim.all_of([]).fired


def test_exceptions_propagate():
    sim = Simulator()

    def bad():
        yield 1
        raise RuntimeError("boom")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_livelock_guard():
    sim = Simulator()

    def spinner():
        while True:
            yield 0

    sim.process(spinner())
    with pytest.raises(SimulationError, match="livelock"):
        sim.run(max_events=1000)


def test_run_process_detects_deadlock():
    sim = Simulator()
    never = sim.event()

    def stuck():
        yield never

    with pytest.raises(SimulationError, match="did not finish"):
        sim.run_process(stuck())


def test_determinism_across_runs():
    def build():
        sim = Simulator()
        trace = []

        def worker(name, delays):
            for d in delays:
                yield d
                trace.append((sim.now, name))

        sim.process(worker("a", [3, 3, 3]))
        sim.process(worker("b", [2, 4, 3]))
        sim.run()
        return trace

    assert build() == build()


def test_timeout_call():
    sim = Simulator()
    fired = []
    sim.timeout_call(15, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [15]


class TestFastForwardOrdering:
    """The same-cycle ready FIFO and single-runnable fast path must keep
    the documented FIFO determinism of the event loop."""

    def test_heap_entries_run_before_same_cycle_wakeups(self):
        # B was scheduled for cycle 5 in the past (heap); A is woken at
        # cycle 5 by an event fired during cycle 5 (ready FIFO).  B's
        # schedule predates A's wakeup, so B must step first.
        sim = Simulator()
        order = []
        gate = sim.event("gate")

        def firer():
            yield 5
            order.append("firer")
            gate.fire()

        def waiter():
            yield gate
            order.append("waiter")

        def sleeper():
            yield 5
            order.append("sleeper")

        sim.process(waiter(), name="waiter")
        sim.process(firer(), name="firer")
        sim.process(sleeper(), name="sleeper")
        sim.run()
        assert order == ["firer", "sleeper", "waiter"]

    def test_zero_delay_wakeups_preserve_fifo_order(self):
        sim = Simulator()
        order = []
        event = sim.event("e")

        def waiter(tag):
            yield event
            order.append(tag)

        for tag in range(5):
            sim.process(waiter(tag), name=f"w{tag}")
        sim.run()
        order.clear()
        event.fire()
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_single_process_advances_clock_correctly(self):
        sim = Simulator()
        seen = []

        def stepper():
            for _ in range(1000):
                yield 3
            seen.append(sim.now)

        sim.process(stepper(), name="stepper")
        sim.run()
        assert seen == [3000]
        assert sim.now == 3000

    def test_zero_delay_livelock_still_guarded(self):
        sim = Simulator()

        def spinner():
            while True:
                yield 0

        sim.process(spinner(), name="spinner")
        with pytest.raises(SimulationError, match="livelock"):
            sim.run(max_events=1000)

    def test_run_until_with_pending_ready_items(self):
        sim = Simulator()
        log = []

        def ticker():
            while True:
                log.append(sim.now)
                yield 10

        sim.process(ticker(), name="ticker")
        assert sim.run(until=25) == 25
        assert log == [0, 10, 20]
        assert sim.run(until=45) == 45
        assert log == [0, 10, 20, 30, 40]
