"""Tests for main memory, the bus latency model and the 2D DMA engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.bus import BusModel
from repro.mem.dma import Dma2D, DmaRequest
from repro.mem.memory import MainMemory, MemoryError
from repro.sim.kernel import Simulator


class TestMainMemory:
    def test_typed_roundtrip(self):
        memory = MainMemory(1024)
        memory.write_u32(0x10, 0xDEADBEEF)
        assert memory.read_u32(0x10) == 0xDEADBEEF
        assert memory.read_u16(0x10) == 0xBEEF
        assert memory.read_u8(0x13) == 0xDE

    def test_signed_reads(self):
        memory = MainMemory(64)
        memory.write_u8(0, 0xFF)
        memory.write_u16(2, 0x8000)
        assert memory.read_s8(0) == -1
        assert memory.read_s16(2) == -32768

    def test_base_offset(self):
        memory = MainMemory(256, base=0x1000)
        memory.write_u32(0x1000, 7)
        assert memory.read_u32(0x1000) == 7
        with pytest.raises(MemoryError):
            memory.read_u8(0xFFF)

    def test_bounds_checked(self):
        memory = MainMemory(16)
        with pytest.raises(MemoryError):
            memory.read_u32(14)
        with pytest.raises(MemoryError):
            memory.write_block(8, b"123456789")

    def test_contains(self):
        memory = MainMemory(64, base=32)
        assert memory.contains(32, 64)
        assert not memory.contains(31)
        assert not memory.contains(90, 8)

    def test_matrix_roundtrip(self):
        memory = MainMemory(4096)
        matrix = np.arange(12, dtype=np.int16).reshape(3, 4)
        memory.write_matrix(0x100, matrix)
        out = memory.read_matrix(0x100, 3, 4, np.int16)
        assert np.array_equal(out, matrix)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MainMemory(0)


class TestBusModel:
    def test_beats(self):
        bus = BusModel(width_bytes=4)
        assert bus.beats(1) == 1
        assert bus.beats(4) == 1
        assert bus.beats(5) == 2
        assert bus.beats(0) == 0

    def test_onchip_vs_offchip(self):
        bus = BusModel(request_latency=1, offchip_latency=10)
        assert bus.transfer_cycles(64) == 1 + 16
        assert bus.transfer_cycles(64, offchip=True) == 11 + 16

    def test_2d_charges_per_row(self):
        bus = BusModel(request_latency=2, offchip_latency=0)
        per_row = bus.transfer_cycles(16)
        assert bus.transfer_2d_cycles(16, 8) == 8 * per_row

    def test_zero_transfers_free(self):
        bus = BusModel()
        assert bus.transfer_cycles(0) == 0
        assert bus.transfer_2d_cycles(0, 5) == 0
        assert bus.transfer_2d_cycles(8, 0) == 0

    def test_non_burst_mode(self):
        bus = BusModel(request_latency=2, burst=False)
        assert bus.transfer_cycles(8) == 2 * (2 + 1)


def _memory_endpoints(memory: MainMemory):
    return memory.read_block, memory.write_block


class TestDma2D:
    def test_contiguous_copy(self):
        memory = MainMemory(4096)
        memory.write_block(0, bytes(range(64)))
        dma = Dma2D(BusModel())
        read, write = _memory_endpoints(memory)
        request = DmaRequest(src_addr=0, dst_addr=1024, row_bytes=64, rows=1,
                             read=read, write=write)
        cycles = dma.transfer(request)
        assert memory.read_block(1024, 64) == bytes(range(64))
        assert cycles == BusModel().transfer_cycles(64)

    def test_strided_gather(self):
        # gather column-like rows: 4 rows of 8 bytes with 32-byte src stride
        memory = MainMemory(4096)
        for row in range(4):
            memory.write_block(row * 32, bytes([row] * 8))
        dma = Dma2D(BusModel())
        read, write = _memory_endpoints(memory)
        request = DmaRequest(src_addr=0, dst_addr=2048, row_bytes=8, rows=4,
                             src_stride=32, dst_stride=8, read=read, write=write)
        dma.transfer(request)
        assert memory.read_block(2048, 32) == bytes([0] * 8 + [1] * 8 + [2] * 8 + [3] * 8)

    def test_scatter(self):
        memory = MainMemory(4096)
        memory.write_block(0, bytes(range(16)))
        dma = Dma2D(BusModel())
        read, write = _memory_endpoints(memory)
        request = DmaRequest(src_addr=0, dst_addr=256, row_bytes=4, rows=4,
                             src_stride=4, dst_stride=64, read=read, write=write)
        dma.transfer(request)
        for row in range(4):
            assert memory.read_block(256 + row * 64, 4) == bytes(range(row * 4, row * 4 + 4))

    def test_row_hook_invoked_per_row(self):
        memory = MainMemory(1024)
        seen = []
        dma = Dma2D(BusModel())
        read, write = _memory_endpoints(memory)
        request = DmaRequest(src_addr=0, dst_addr=512, row_bytes=8, rows=3,
                             read=read, write=write,
                             row_hook=lambda row, s, d: seen.append((row, s, d)))
        dma.transfer(request)
        assert seen == [(0, 0, 512), (1, 8, 520), (2, 16, 528)]

    def test_process_form_advances_time_per_row(self):
        memory = MainMemory(1024)
        bus = BusModel(request_latency=1)
        dma = Dma2D(bus)
        sim = Simulator()
        read, write = _memory_endpoints(memory)
        request = DmaRequest(src_addr=0, dst_addr=512, row_bytes=16, rows=4,
                             read=read, write=write)
        sim.run_process(dma.transfer_process(sim, request))
        assert sim.now == 4 * bus.transfer_cycles(16)

    def test_stats_recorded(self):
        memory = MainMemory(1024)
        dma = Dma2D(BusModel())
        read, write = _memory_endpoints(memory)
        dma.transfer(DmaRequest(src_addr=0, dst_addr=512, row_bytes=32, rows=2,
                                read=read, write=write))
        assert dma.stats.value("dma.transfers") == 1
        assert dma.stats.value("dma.bytes") == 64

    def test_invalid_request_rejected(self):
        with pytest.raises(ValueError):
            DmaRequest(src_addr=0, dst_addr=0, row_bytes=-1, rows=1)

    def test_negative_strides_rejected(self):
        with pytest.raises(ValueError, match="strides must be non-negative"):
            DmaRequest(src_addr=0, dst_addr=0, row_bytes=8, rows=2, src_stride=-8)
        with pytest.raises(ValueError, match="strides must be non-negative"):
            DmaRequest(src_addr=0, dst_addr=0, row_bytes=8, rows=2, dst_stride=-8)

    def test_empty_transfer_skips_stats(self):
        # zero rows and zero-byte rows move nothing: no cycles, no counters
        dma = Dma2D(BusModel())
        assert dma.transfer(DmaRequest(src_addr=0, dst_addr=0, row_bytes=8,
                                       rows=0)) == 0
        assert dma.transfer(DmaRequest(src_addr=0, dst_addr=0, row_bytes=0,
                                       rows=5)) == 0
        assert dma.stats.value("dma.transfers") == 0
        assert dma.stats.value("dma.bytes") == 0
        assert dma.stats.value("dma.cycles") == 0

    def test_empty_transfer_process_skips_stats(self):
        dma = Dma2D(BusModel())
        sim = Simulator()
        sim.run_process(dma.transfer_process(
            sim, DmaRequest(src_addr=0, dst_addr=0, row_bytes=8, rows=0)))
        assert sim.now == 0
        assert dma.stats.value("dma.transfers") == 0

    @given(st.integers(0, 8), st.integers(0, 32))
    @settings(max_examples=20, deadline=None)
    def test_empty_iff_no_bytes(self, rows, row_bytes):
        request = DmaRequest(src_addr=0, dst_addr=0, row_bytes=row_bytes, rows=rows)
        assert request.empty == (request.total_bytes == 0)

    @given(st.integers(1, 8), st.integers(1, 32), st.integers(0, 64))
    @settings(max_examples=20, deadline=None)
    def test_total_bytes_property(self, rows, row_bytes, extra_stride):
        request = DmaRequest(src_addr=0, dst_addr=0, row_bytes=row_bytes, rows=rows,
                             src_stride=row_bytes + extra_stride)
        assert request.total_bytes == rows * row_bytes
