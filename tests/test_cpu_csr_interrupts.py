"""CSR access and machine-interrupt tests (the eCPU's C-RT entry path)."""

from repro.cpu import csr as csrdefs
from repro.cpu.core import Cpu
from repro.isa.asm import assemble
from repro.mem.memory import MainMemory


def build(source: str) -> Cpu:
    program = assemble(source)
    memory = MainMemory(64 * 1024)
    memory.write_block(0, bytes(program.data))
    return Cpu(memory)


def test_csr_read_write():
    cpu = build(
        "li a0, 0x1234\ncsrrw zero, 0x340, a0\ncsrrs a1, 0x340, zero\nebreak"
    )
    cpu.run()
    assert cpu.regs[11] == 0x1234


def test_csr_set_clear_bits():
    cpu = build(
        """
            li a0, 0xff
            csrrw zero, 0x340, a0
            li a1, 0x0f
            csrrc zero, 0x340, a1
            csrrs a2, 0x340, zero
            ebreak
        """
    )
    cpu.run()
    assert cpu.regs[12] == 0xF0


def test_csr_immediate_forms():
    cpu = build("csrrwi zero, 0x340, 21\ncsrrsi a0, 0x340, 2\ncsrrci a1, 0x340, 1\nebreak")
    cpu.run()
    assert cpu.regs[10] == 21
    assert cpu.regs[11] == 23


def test_external_interrupt_vectors_to_mtvec():
    cpu = build(
        """
            # set mtvec to the handler, enable MEIE + global MIE
            la t0, handler
            csrrw zero, 0x305, t0
            li t0, 0x800
            csrrs zero, 0x304, t0      # mie.MEIE
            csrrsi zero, 0x300, 8      # mstatus.MIE
            li a0, 0
        wait:
            addi a0, a0, 1
            j wait
        handler:
            li a1, 77
            ebreak
        """
    )
    # run a little, then assert the pending line redirects execution
    for _ in range(20):
        cpu.step()
    cpu.csrs.raise_external_interrupt()
    cpu.run(max_instructions=100)
    assert cpu.regs[11] == 77
    assert cpu.csrs.read(csrdefs.MCAUSE) == 0x8000000B
    assert not cpu.csrs.interrupts_enabled  # MIE cleared on entry


def test_interrupt_not_taken_when_disabled():
    cpu = build(
        """
            li a0, 0
            addi a0, a0, 1
            addi a0, a0, 2
            ebreak
        """
    )
    cpu.csrs.raise_external_interrupt()  # pending but MIE/MEIE are off
    cpu.run()
    assert cpu.regs[10] == 3


def test_mret_returns_and_reenables():
    cpu = build(
        """
            la t0, handler
            csrrw zero, 0x305, t0
            li t0, 0x800
            csrrs zero, 0x304, t0
            csrrsi zero, 0x300, 8
            li a0, 0
        spin:
            addi a0, a0, 1
            li t1, 50
            blt a0, t1, spin
            ebreak
        handler:
            li a1, 1
            mret
        """
    )
    for _ in range(10):
        cpu.step()
    cpu.csrs.raise_external_interrupt()
    cpu.step()  # takes the interrupt
    cpu.csrs.clear_external_interrupt()
    cpu.run(max_instructions=1000)
    assert cpu.regs[11] == 1  # handler ran
    assert cpu.regs[10] == 50  # main loop completed after mret
    assert cpu.csrs.interrupts_enabled  # restored by mret
