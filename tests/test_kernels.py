"""Correctness tests for the five Table I kernels against golden models.

Every kernel runs through the full stack (program builder -> bridge ->
decoder -> scheduler -> VPU) and must match the numpy golden models
bit-for-bit, across element types and shapes including wrap-around cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.reference import (
    ref_conv2d,
    ref_conv_layer,
    ref_gemm,
    ref_leaky_relu,
    ref_maxpool,
)
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem
from repro.xbridge.bridge import OffloadOutcome

SMALL = ArcaneConfig(n_vpus=4, lanes=4, line_bytes=256, vpu_kib=8, main_memory_kib=512)

DTYPES = [np.int8, np.int16, np.int32]


def make_system() -> ArcaneSystem:
    return ArcaneSystem(SMALL)


class TestGemm:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matches_golden(self, rng, dtype):
        m, k, n = 5, 7, 6
        a = rng.integers(-8, 8, (m, k)).astype(dtype)
        b = rng.integers(-8, 8, (k, n)).astype(dtype)
        c = rng.integers(-8, 8, (m, n)).astype(dtype)
        system = make_system()
        ma = system.place_matrix(a)
        mb = system.place_matrix(b)
        mc = system.place_matrix(c)
        md = system.alloc_matrix((m, n), dtype)
        suffix = ma.etype.suffix
        with system.program() as prog:
            prog.xmr(0, ma).xmr(1, mb).xmr(2, mc).xmr(3, md)
            prog.gemm(dest=3, a=0, b=1, c=2, alpha=2, beta=-1, suffix=suffix)
        assert np.array_equal(system.read_matrix(md), ref_gemm(a, b, c, 2, -1))

    def test_beta_zero_skips_addend(self, rng):
        a = rng.integers(-4, 4, (3, 3)).astype(np.int32)
        b = rng.integers(-4, 4, (3, 3)).astype(np.int32)
        c = rng.integers(-4, 4, (3, 3)).astype(np.int32)
        system = make_system()
        handles = [system.place_matrix(x) for x in (a, b, c)]
        out = system.alloc_matrix((3, 3), np.int32)
        with system.program() as prog:
            prog.xmr(0, handles[0]).xmr(1, handles[1]).xmr(2, handles[2]).xmr(3, out)
            prog.gemm(dest=3, a=0, b=1, c=2, alpha=1, beta=0)
        assert np.array_equal(system.read_matrix(out), ref_gemm(a, b, c, 1, 0))

    def test_wraparound_int8(self):
        a = np.full((2, 4), 100, dtype=np.int8)
        b = np.full((4, 2), 100, dtype=np.int8)
        c = np.zeros((2, 2), dtype=np.int8)
        system = make_system()
        ma, mb, mc = (system.place_matrix(x) for x in (a, b, c))
        md = system.alloc_matrix((2, 2), np.int8)
        with system.program() as prog:
            prog.xmr(0, ma).xmr(1, mb).xmr(2, mc).xmr(3, md)
            prog.gemm(dest=3, a=0, b=1, c=2, alpha=1, beta=0, suffix="b")
        assert np.array_equal(system.read_matrix(md), ref_gemm(a, b, c, 1, 0))

    def test_inner_dim_mismatch_raises(self, rng):
        a = rng.integers(-4, 4, (3, 4)).astype(np.int32)
        b = rng.integers(-4, 4, (3, 3)).astype(np.int32)
        system = make_system()
        ma, mb = system.place_matrix(a), system.place_matrix(b)
        out = system.alloc_matrix((3, 3), np.int32)
        with pytest.raises(ValueError, match="inner dims"):
            with system.program() as prog:
                prog.xmr(0, ma).xmr(1, mb).xmr(2, out).xmr(3, out)
                prog.gemm(dest=3, a=0, b=1, c=2)

    def test_strip_mined_large_k(self, rng):
        # K larger than the register budget forces B re-streaming.
        a = rng.integers(-4, 4, (2, 24)).astype(np.int32)
        b = rng.integers(-4, 4, (24, 5)).astype(np.int32)
        c = np.zeros((2, 5), dtype=np.int32)
        system = make_system()
        ma, mb, mc = (system.place_matrix(x) for x in (a, b, c))
        md = system.alloc_matrix((2, 5), np.int32)
        with system.program() as prog:
            prog.xmr(0, ma).xmr(1, mb).xmr(2, mc).xmr(3, md)
            prog.gemm(dest=3, a=0, b=1, c=2, alpha=1, beta=0)
        assert np.array_equal(system.read_matrix(md), ref_gemm(a, b, c, 1, 0))


class TestLeakyRelu:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("alpha", [0, 2, 5])
    def test_matches_golden(self, rng, dtype, alpha):
        x = rng.integers(-100, 100, (6, 9)).astype(dtype)
        system = make_system()
        mx = system.place_matrix(x)
        out = system.alloc_matrix(x.shape, dtype)
        with system.program() as prog:
            prog.xmr(0, mx).xmr(1, out)
            prog.leaky_relu(dest=1, src=0, alpha=alpha, suffix=mx.etype.suffix)
        assert np.array_equal(system.read_matrix(out), ref_leaky_relu(x, alpha))

    def test_invalid_alpha_rejected(self, rng):
        x = rng.integers(-4, 4, (2, 2)).astype(np.int32)
        system = make_system()
        mx = system.place_matrix(x)
        out = system.alloc_matrix((2, 2), np.int32)
        with pytest.raises(ValueError, match="alpha"):
            with system.program() as prog:
                prog.xmr(0, mx).xmr(1, out)
                prog.leaky_relu(dest=1, src=0, alpha=40)


class TestMaxpool:
    @pytest.mark.parametrize("window,stride", [(2, 2), (3, 1), (2, 1), (3, 3)])
    def test_matches_golden(self, rng, window, stride):
        x = rng.integers(-50, 50, (9, 11)).astype(np.int16)
        expected = ref_maxpool(x, window, stride)
        system = make_system()
        mx = system.place_matrix(x)
        out = system.alloc_matrix(expected.shape, np.int16)
        with system.program() as prog:
            prog.xmr(0, mx).xmr(1, out)
            prog.maxpool(dest=1, src=0, window=window, stride=stride, suffix="h")
        assert np.array_equal(system.read_matrix(out), expected)

    def test_wrong_dest_shape_rejected(self, rng):
        x = rng.integers(-4, 4, (8, 8)).astype(np.int32)
        system = make_system()
        mx = system.place_matrix(x)
        out = system.alloc_matrix((8, 8), np.int32)  # should be 4x4
        with pytest.raises(ValueError, match="destination"):
            with system.program() as prog:
                prog.xmr(0, mx).xmr(1, out)
                prog.maxpool(dest=1, src=0)


class TestConv2d:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_golden(self, rng, dtype, k):
        x = rng.integers(-8, 8, (10, 12)).astype(dtype)
        f = rng.integers(-3, 4, (k, k)).astype(dtype)
        expected = ref_conv2d(x, f)
        system = make_system()
        mx, mf = system.place_matrix(x), system.place_matrix(f)
        out = system.alloc_matrix(expected.shape, dtype)
        with system.program() as prog:
            prog.xmr(0, mx).xmr(1, mf).xmr(2, out)
            prog.conv2d(dest=2, src=0, flt=1, suffix=mx.etype.suffix)
        assert np.array_equal(system.read_matrix(out), expected)

    def test_zero_taps_skipped_but_correct(self, rng):
        x = rng.integers(-8, 8, (6, 6)).astype(np.int32)
        f = np.zeros((3, 3), dtype=np.int32)
        f[1, 1] = 2  # mostly-zero filter exercises the tap-skip path
        system = make_system()
        mx, mf = system.place_matrix(x), system.place_matrix(f)
        out = system.alloc_matrix((4, 4), np.int32)
        with system.program() as prog:
            prog.xmr(0, mx).xmr(1, mf).xmr(2, out)
            prog.conv2d(dest=2, src=0, flt=1)
        assert np.array_equal(system.read_matrix(out), ref_conv2d(x, f))

    def test_rectangular_filter_rejected(self, rng):
        x = rng.integers(-4, 4, (6, 6)).astype(np.int32)
        f = rng.integers(-4, 4, (2, 3)).astype(np.int32)
        system = make_system()
        mx, mf = system.place_matrix(x), system.place_matrix(f)
        out = system.alloc_matrix((4, 4), np.int32)
        with pytest.raises(ValueError, match="square"):
            with system.program() as prog:
                prog.xmr(0, mx).xmr(1, mf).xmr(2, out)
                prog.conv2d(dest=2, src=0, flt=1)


class TestConvLayer:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("size,k", [(12, 3), (16, 5), (18, 7)])
    def test_matches_golden(self, rng, dtype, size, k):
        x = rng.integers(-8, 8, (3 * size, size)).astype(dtype)
        f = rng.integers(-2, 3, (3 * k, k)).astype(dtype)
        system = make_system()
        out, report = system.run_conv_layer(x, f)
        assert np.array_equal(out, ref_conv_layer(x, f))
        assert report.breakdown.total > 0

    def test_non_multiple_of_three_rejected(self, rng):
        x = rng.integers(-4, 4, (10, 8)).astype(np.int32)
        f = rng.integers(-2, 2, (9, 3)).astype(np.int32)
        system = make_system()
        with pytest.raises(ValueError, match="3"):
            system.run_conv_layer(x, f)

    def test_multi_vpu_matches_single(self, rng):
        x = rng.integers(-8, 8, (3 * 20, 20)).astype(np.int8)
        f = rng.integers(-2, 3, (9, 3)).astype(np.int8)
        single, _ = ArcaneSystem(SMALL).run_conv_layer(x, f)
        multi, report = ArcaneSystem(SMALL.with_multi_vpu()).run_conv_layer(x, f)
        assert np.array_equal(single, multi)
        assert np.array_equal(multi, ref_conv_layer(x, f))

    def test_multi_vpu_is_faster(self, rng):
        x = rng.integers(-8, 8, (3 * 32, 32)).astype(np.int8)
        f = rng.integers(-2, 3, (9, 3)).astype(np.int8)
        _, single = ArcaneSystem(SMALL).run_conv_layer(x, f)
        _, multi = ArcaneSystem(SMALL.with_multi_vpu()).run_conv_layer(x, f)
        assert multi.breakdown.cycles["compute"] < single.breakdown.cycles["compute"]


class TestUnknownKernel:
    def test_unregistered_func5_killed(self, rng):
        system = make_system()
        x = system.place_matrix(rng.integers(-4, 4, (2, 2)).astype(np.int32))
        with system.program() as prog:
            prog.xmr(0, x)
            prog.xmk(17, "w")  # nothing registered in slot 17
        report = system.last_report
        assert report.outcomes[-1] is OffloadOutcome.KILLED


@given(
    size=st.integers(min_value=8, max_value=20),
    k=st.sampled_from([3, 5]),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=10, deadline=None)
def test_conv_layer_property(size, k, seed):
    """Random shapes/data: ARCANE conv layer == golden model, always."""
    rng = np.random.default_rng(seed)
    x = rng.integers(-128, 128, (3 * size, size)).astype(np.int8)
    f = rng.integers(-8, 8, (3 * k, k)).astype(np.int8)
    system = ArcaneSystem(SMALL)
    out, _ = system.run_conv_layer(x, f)
    assert np.array_equal(out, ref_conv_layer(x, f))
