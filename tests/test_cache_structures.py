"""Tests for cache lines, the CT, approximate LRU and the AT."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.address_table import AddressTable, HazardKind, OperandKind
from repro.cache.cache_table import CacheTable
from repro.cache.line import LineRole
from repro.cache.lru import ApproxLru
from repro.sim.kernel import Simulator


class TestCacheLine:
    def test_vrf_backing_is_shared(self):
        ct = CacheTable(n_vpus=1, vregs_per_vpu=2, line_bytes=64)
        line = ct.lines[0]
        line.write_bytes(0, b"\x11\x22")
        assert ct.storage[0] == 0x11  # same buffer

    def test_compute_claim_release(self):
        ct = CacheTable(1, 2, 64)
        line = ct.lines[0]
        ct.bind(line, 0x100)
        ct.claim_for_compute(line)
        assert line.is_compute and not line.valid
        assert ct.lookup(0x100) is None
        line.release_from_compute()
        assert line.role is LineRole.NONE

    def test_release_requires_compute_state(self):
        ct = CacheTable(1, 2, 64)
        with pytest.raises(RuntimeError):
            ct.lines[0].release_from_compute()


class TestCacheTable:
    def test_line_count_matches_vrf_capacity(self):
        ct = CacheTable(n_vpus=4, vregs_per_vpu=32, line_bytes=1024)
        assert ct.n_lines == 128  # paper III-A.1

    def test_lookup_by_tag(self):
        ct = CacheTable(2, 2, 64)
        ct.bind(ct.lines[0], 0x1000)
        assert ct.lookup(0x1000) is ct.lines[0]
        assert ct.lookup(0x103F) is ct.lines[0]
        assert ct.lookup(0x1040) is None

    def test_rebind_moves_tag(self):
        ct = CacheTable(1, 2, 64)
        ct.bind(ct.lines[0], 0x100)
        ct.bind(ct.lines[0], 0x200)
        assert ct.lookup(0x100) is None
        assert ct.lookup(0x200) is ct.lines[0]

    def test_bind_compute_line_rejected(self):
        ct = CacheTable(1, 2, 64)
        ct.claim_for_compute(ct.lines[0])
        with pytest.raises(RuntimeError):
            ct.bind(ct.lines[0], 0)

    def test_vpu_line_slices(self):
        ct = CacheTable(n_vpus=2, vregs_per_vpu=3, line_bytes=64)
        assert [l.index for l in ct.vpu_lines(0)] == [0, 1, 2]
        assert [l.index for l in ct.vpu_lines(1)] == [3, 4, 5]
        with pytest.raises(IndexError):
            ct.vpu_lines(2)

    def test_dirty_line_count(self):
        ct = CacheTable(2, 2, 64)
        ct.bind(ct.lines[0], 0)
        ct.lines[0].dirty = True
        ct.bind(ct.lines[2], 0x100)
        ct.lines[2].dirty = True
        assert ct.dirty_line_count(0) == 1
        assert ct.dirty_line_count(1) == 1

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ValueError):
            CacheTable(1, 1, 100)

    def test_occupancy(self):
        ct = CacheTable(1, 4, 64)
        ct.bind(ct.lines[0], 0)
        ct.claim_for_compute(ct.lines[1])
        occ = ct.occupancy()
        assert occ["valid"] == 1 and occ["compute"] == 1


class TestApproxLru:
    def test_victim_prefers_invalid(self):
        ct = CacheTable(1, 4, 64)
        ct.bind(ct.lines[0], 0)
        victim = ct.select_victim()
        assert not victim.valid

    def test_victim_is_oldest(self):
        ct = CacheTable(1, 3, 64)
        for i, line in enumerate(ct.lines):
            ct.bind(line, i * 64)
        # touch lines 1 and 2 repeatedly; line 0 ages out
        for _ in range(5):
            ct.touch(ct.lines[1])
            ct.touch(ct.lines[2])
        assert ct.select_victim() is ct.lines[0]

    def test_compute_lines_never_victims(self):
        ct = CacheTable(1, 2, 64)
        ct.claim_for_compute(ct.lines[0])
        ct.bind(ct.lines[1], 0)
        for _ in range(10):
            ct.touch(ct.lines[1])
        assert ct.select_victim() is ct.lines[1]

    def test_counters_saturate(self):
        lru = ApproxLru(counter_bits=2)
        ct = CacheTable(1, 2, 64)
        for _ in range(10):
            lru.touch(ct.lines[0], ct.lines)
        assert ct.lines[1].lru_counter == 3  # saturated at 2^2-1

    def test_empty_candidates(self):
        assert ApproxLru().select_victim([]) is None

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_most_recently_touched_never_evicted(self, accesses):
        ct = CacheTable(1, 4, 64)
        for i, line in enumerate(ct.lines):
            ct.bind(line, i * 64)
        last = None
        for index in accesses:
            ct.touch(ct.lines[index])
            last = ct.lines[index]
        assert ct.select_victim() is not last


class TestAddressTable:
    def test_register_and_lookup(self):
        at = AddressTable(4)
        entry = at.register(0x100, 0x200, OperandKind.SOURCE, matrix_id=1)
        assert at.lookup(0x100) is entry
        assert at.lookup(0x1FF) is entry
        assert at.lookup(0x200) is None

    def test_capacity_enforced(self):
        at = AddressTable(1)
        at.register(0, 16, OperandKind.SOURCE, 1)
        with pytest.raises(RuntimeError, match="full"):
            at.register(16, 32, OperandKind.DEST, 2)

    def test_released_entries_garbage_collected(self):
        at = AddressTable(1)
        at.register(0, 16, OperandKind.SOURCE, 1)
        at.release(1)
        at.register(16, 32, OperandKind.DEST, 2)  # no overflow after release

    def test_hazard_classification(self):
        at = AddressTable(4)
        at.register(0x000, 0x100, OperandKind.SOURCE, 1)
        at.register(0x100, 0x200, OperandKind.DEST, 2)
        assert at.hazard_for(0x10, 4, is_write=True) is HazardKind.WAR
        assert at.hazard_for(0x10, 4, is_write=False) is None  # reads of sources OK
        assert at.hazard_for(0x110, 4, is_write=False) is HazardKind.RAW
        assert at.hazard_for(0x110, 4, is_write=True) is HazardKind.WAW
        assert at.hazard_for(0x300, 4, is_write=True) is None

    def test_release_fires_event(self):
        sim = Simulator()
        at = AddressTable(4, sim)
        entry = at.register(0, 64, OperandKind.DEST, 7)
        assert not entry.released.fired
        assert at.release(7) == 1
        assert entry.released.fired

    def test_release_by_kind(self):
        at = AddressTable(4)
        at.register(0, 64, OperandKind.SOURCE, 7)
        at.register(64, 128, OperandKind.DEST, 7)
        assert at.release_source_block(7) == 1
        assert at.hazard_for(70, 4, is_write=False) is HazardKind.RAW  # dest still busy

    def test_range_overlap_semantics(self):
        at = AddressTable(4)
        at.register(0x100, 0x110, OperandKind.DEST, 1)
        # 4-byte access straddling the start blocks
        assert at.hazard_for(0xFE, 4, is_write=False) is HazardKind.RAW
        assert at.hazard_for(0xFC, 4, is_write=False) is None
