"""Evaluation-layer tests: area model (Table II), throughput, figure series."""

import pytest

from repro.core.config import ArcaneConfig
from repro.eval.area import AreaModel, BASELINE_TOTAL_KGE, UM2_PER_GE
from repro.eval.calibration import PAPER_ANCHORS, anchor
from repro.eval.figures import measure_conv_layer
from repro.eval.tables import paper_vs_measured, render_table
from repro.eval.throughput import SOTA_COMPARISONS, ThroughputModel


class TestAreaModel:
    """The area model must reproduce Table II almost exactly."""

    def test_baseline_total(self):
        assert BASELINE_TOTAL_KGE == pytest.approx(1640, abs=1)
        model = AreaModel()
        assert model.baseline().total_mm2 == pytest.approx(2.36, rel=0.01)

    @pytest.mark.parametrize(
        "lanes,paper_kge,paper_overhead",
        [(2, 1996, 21.7), (4, 2105, 28.3), (8, 2318, 41.3)],
    )
    def test_table2_rows(self, lanes, paper_kge, paper_overhead):
        model = AreaModel()
        config = ArcaneConfig(lanes=lanes)
        assert model.arcane(config).total_kge == pytest.approx(paper_kge, rel=0.005)
        assert model.overhead_percent(config) == pytest.approx(paper_overhead, abs=0.5)

    def test_table2_dict_shape(self):
        table = AreaModel().table2()
        assert len(table) == 4
        assert "X-HEEP (4 DMem banks)" in table

    def test_area_grows_with_lanes(self):
        model = AreaModel()
        areas = [model.arcane(ArcaneConfig(lanes=l)).total_kge for l in (2, 4, 8)]
        assert areas == sorted(areas)

    def test_figure2_shares_sum_to_one(self):
        breakdown = AreaModel().arcane(ArcaneConfig(lanes=4))
        assert sum(breakdown.shares().values()) == pytest.approx(1.0)

    def test_figure2_key_shares(self):
        """4-lane split: pad ring ~12%, IMem ~28-29%, core ~2-3% (Fig. 2)."""
        breakdown = AreaModel().arcane(ArcaneConfig(lanes=4))
        assert breakdown.share("pad_ring") == pytest.approx(0.12, abs=0.01)
        assert breakdown.share("imem") == pytest.approx(0.29, abs=0.02)
        assert breakdown.share("cv32e40px") == pytest.approx(0.025, abs=0.01)

    def test_llc_subsystem_near_half(self):
        """Paper Fig. 2: LLC subsystem ~52% of the 4-lane system."""
        model = AreaModel()
        config = ArcaneConfig(lanes=4)
        share = model.llc_subsystem_kge(config) / model.arcane(config).total_kge
        assert share == pytest.approx(0.52, abs=0.03)

    def test_density_constant(self):
        assert UM2_PER_GE == pytest.approx(1.439, abs=0.01)


class TestThroughput:
    def test_peak_gops_formula(self):
        model = ThroughputModel()
        assert model.peak_gops(ArcaneConfig(lanes=8), 265.0) == pytest.approx(16.96)
        assert model.peak_gops(ArcaneConfig(lanes=2), 250.0) == pytest.approx(4.0)

    def test_paper_17gops_anchor(self):
        measured = ThroughputModel().peak_gops(ArcaneConfig(lanes=8), 265.0)
        assert measured == pytest.approx(anchor("peak_throughput").paper_value, rel=0.01)

    def test_area_efficiency_matches_paper(self):
        """Paper: 9.2 GOPS/mm^2 for ARCANE vs 9.1 for BLADE."""
        efficiency = ThroughputModel().area_efficiency(ArcaneConfig(lanes=8), 265.0)
        assert efficiency == pytest.approx(9.2, abs=0.4)
        assert SOTA_COMPARISONS["blade"].gops_per_mm2 == pytest.approx(9.1, abs=0.1)

    def test_versus_table(self):
        rows = ThroughputModel().versus(ArcaneConfig(lanes=8))
        assert set(rows) == {"ARCANE", "BLADE", "Intel CNC"}
        # paper: BLADE 3.2x below ARCANE, CNC 1.47x above
        assert rows["BLADE"]["ratio_vs_arcane"] == pytest.approx(1 / 3.2, abs=0.05)
        assert rows["Intel CNC"]["ratio_vs_arcane"] == pytest.approx(1.47, abs=0.05)


class TestCalibrationRegistry:
    def test_all_anchors_have_sources(self):
        for entry in PAPER_ANCHORS:
            assert entry.source
            assert entry.paper_value > 0

    def test_lookup(self):
        assert anchor("area_overhead_8lane").paper_value == 41.3
        with pytest.raises(KeyError):
            anchor("nonexistent")


class TestFigureSeries:
    def test_measure_point_fields(self):
        point = measure_conv_layer(16, 3, dtype="int8", lanes=4, verify=True)
        assert point.arcane_cycles > 0
        assert point.scalar_cycles > point.arcane_cycles  # ARCANE wins at 16x16
        assert 0 < point.breakdown.overhead_fraction() < 1

    def test_more_lanes_never_slower_int32(self):
        slow = measure_conv_layer(32, 3, dtype="int32", lanes=2)
        fast = measure_conv_layer(32, 3, dtype="int32", lanes=8)
        assert fast.arcane_cycles <= slow.arcane_cycles

    def test_int8_faster_than_int32(self):
        i8 = measure_conv_layer(32, 3, dtype="int8", lanes=4)
        i32 = measure_conv_layer(32, 3, dtype="int32", lanes=4)
        assert i8.arcane_cycles < i32.arcane_cycles

    def test_speedup_grows_with_size(self):
        small = measure_conv_layer(16, 3, dtype="int8", lanes=8)
        large = measure_conv_layer(64, 3, dtype="int8", lanes=8)
        assert large.speedup_vs_scalar > small.speedup_vs_scalar

    def test_preamble_share_shrinks_with_size(self):
        small = measure_conv_layer(16, 3, dtype="int32", lanes=4)
        large = measure_conv_layer(64, 3, dtype="int32", lanes=4)
        assert small.breakdown.fraction("preamble") > large.breakdown.fraction("preamble")


class TestTables:
    def test_render_alignment(self):
        text = render_table(["a", "metric"], [[1, 2.5], [300, "x"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(set(len(line) for line in lines[1:])) == 1  # aligned

    def test_paper_vs_measured(self):
        text = paper_vs_measured([["speedup", 30.0, 28.5]], "Anchors")
        assert "paper" in text and "measured" in text
