"""Cross-cutting property-based tests (hypothesis).

The heavyweight invariants:

* the LLC controller is *transparent*: any interleaving of host reads and
  writes through the cache observes exactly the same values as a flat
  memory (write-back, eviction, refill and approximate-LRU are invisible
  to software semantics);
* assembled `li` materialises every 32-bit constant exactly;
* the conv-layer micro-program equals the golden model for arbitrary
  shapes/data (in test_kernels.py);
* phase breakdowns merge associatively.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cpu.core import Cpu
from repro.isa.asm import assemble
from repro.mem.memory import MainMemory
from repro.runtime.phases import PHASES, PhaseBreakdown
from repro.utils.bitops import to_signed

from tests.conftest import CacheHarness


@st.composite
def host_operations(draw):
    """A random sequence of aligned host accesses within a small region."""
    ops = []
    for _ in range(draw(st.integers(1, 40))):
        size = draw(st.sampled_from([1, 2, 4]))
        # region spans several cache lines (64 B lines in the harness)
        slot = draw(st.integers(0, 127))
        address = 0x1000 + slot * 4 + draw(st.sampled_from(
            [0] if size == 4 else ([0, 2] if size == 2 else [0, 1, 2, 3])
        ))
        if draw(st.booleans()):
            value = draw(st.integers(0, (1 << (8 * size)) - 1))
            ops.append(("write", address, size, value))
        else:
            ops.append(("read", address, size))
    return ops


@given(host_operations())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_cache_is_transparent_to_software(ops):
    """Cache + memory together behave exactly like one flat memory."""
    cache = CacheHarness(n_vpus=2, vregs=2, line_bytes=64)  # tiny: forces evictions
    reference = MainMemory(64 * 1024)

    for op in ops:
        if op[0] == "write":
            _, address, size, value = op
            cache.write(address, value, size)
            if size == 4:
                reference.write_u32(address, value)
            elif size == 2:
                reference.write_u16(address, value)
            else:
                reference.write_u8(address, value)
        else:
            _, address, size = op
            got = cache.read(address, size)
            if size == 4:
                expected = reference.read_u32(address)
            elif size == 2:
                expected = reference.read_u16(address)
            else:
                expected = reference.read_u8(address)
            assert got == expected

    # after a flush, main memory itself converges to the reference
    cache.controller.flush()
    assert bytes(cache.memory.read_block(0x1000, 512)) == bytes(
        reference.read_block(0x1000, 512)
    )


@given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
@settings(max_examples=60, deadline=None)
def test_li_materialises_any_constant(value):
    program = assemble(f"li a0, {value}\nebreak")
    memory = MainMemory(4096)
    memory.write_block(0, bytes(program.data))
    cpu = Cpu(memory)
    cpu.run()
    assert to_signed(cpu.regs[10]) == value


@given(
    st.lists(
        st.tuples(st.sampled_from(PHASES), st.integers(0, 10_000)),
        max_size=30,
    )
)
@settings(max_examples=40, deadline=None)
def test_phase_breakdown_merge_equals_sum(entries):
    split_a, split_b, together = PhaseBreakdown(), PhaseBreakdown(), PhaseBreakdown()
    for index, (phase, amount) in enumerate(entries):
        (split_a if index % 2 else split_b).add(phase, amount)
        together.add(phase, amount)
    split_a.merge(split_b)
    assert split_a.cycles == together.cycles
    assert split_a.total == together.total


@given(st.integers(0, 255), st.integers(1, 8), st.integers(1, 16))
@settings(max_examples=40, deadline=None)
def test_bus_2d_cost_additive(row_bytes, rows_a, rows_b):
    """Transferring A+B rows costs exactly the sum of the two transfers."""
    from repro.mem.bus import BusModel

    bus = BusModel(offchip_latency=10)
    combined = bus.transfer_2d_cycles(row_bytes, rows_a + rows_b, offchip=True)
    split = (bus.transfer_2d_cycles(row_bytes, rows_a, offchip=True)
             + bus.transfer_2d_cycles(row_bytes, rows_b, offchip=True))
    assert combined == split


@given(
    rows=st.integers(1, 6), cols=st.integers(1, 24),
    alpha=st.integers(0, 7), seed=st.integers(0, 2**16),
    dtype=st.sampled_from([np.int8, np.int16, np.int32]),
)
@settings(max_examples=15, deadline=None)
def test_leaky_relu_kernel_property(rows, cols, alpha, seed, dtype):
    """Arbitrary shapes/dtypes/shifts: xmk1 == golden model."""
    from repro.baselines.reference import ref_leaky_relu
    from repro.core.config import ArcaneConfig
    from repro.core.system import ArcaneSystem

    rng = np.random.default_rng(seed)
    info = np.iinfo(dtype)
    x = rng.integers(info.min, int(info.max) + 1, (rows, cols)).astype(dtype)
    system = ArcaneSystem(
        ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=4, main_memory_kib=512)
    )
    mx = system.place_matrix(x)
    out = system.alloc_matrix((rows, cols), dtype)
    with system.program() as prog:
        prog.xmr(0, mx).xmr(1, out)
        prog.leaky_relu(dest=1, src=0, alpha=alpha, suffix=mx.etype.suffix)
    assert np.array_equal(system.read_matrix(out), ref_leaky_relu(x, alpha))


@given(
    m=st.integers(1, 5), k=st.integers(1, 6), n=st.integers(1, 12),
    alpha=st.integers(-3, 3), beta=st.integers(-2, 2), seed=st.integers(0, 999),
)
@settings(max_examples=12, deadline=None)
def test_gemm_kernel_property(m, k, n, alpha, beta, seed):
    """Arbitrary GeMM shapes and scalar parameters: xmk0 == golden."""
    from repro.baselines.reference import ref_gemm
    from repro.core.config import ArcaneConfig
    from repro.core.system import ArcaneSystem

    rng = np.random.default_rng(seed)
    a = rng.integers(-9, 9, (m, k)).astype(np.int32)
    b = rng.integers(-9, 9, (k, n)).astype(np.int32)
    c = rng.integers(-9, 9, (m, n)).astype(np.int32)
    system = ArcaneSystem(
        ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=4, main_memory_kib=512)
    )
    ma, mb, mc = (system.place_matrix(x) for x in (a, b, c))
    md = system.alloc_matrix((m, n), np.int32)
    with system.program() as prog:
        prog.xmr(0, ma).xmr(1, mb).xmr(2, mc).xmr(3, md)
        prog.gemm(dest=3, a=0, b=1, c=2, alpha=alpha, beta=beta)
    assert np.array_equal(system.read_matrix(md), ref_gemm(a, b, c, alpha, beta))
