"""VPU tests: vector ISA semantics, lane timing, VRF views, dispatcher."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache_table import CacheTable
from repro.sim.stats import StatsRegistry
from repro.vpu.dispatcher import Dispatcher
from repro.vpu.visa import ElementType, VectorOp, VectorOpcode
from repro.vpu.vpu import Vpu
from repro.vpu.vrf import VectorRegisterFile


def make_vpu(lanes=4, vregs=8, line_bytes=256) -> Vpu:
    ct = CacheTable(1, vregs, line_bytes)
    return Vpu(0, VectorRegisterFile(ct.vpu_lines(0)), lanes=lanes)


class TestElementType:
    def test_suffix_mapping(self):
        assert ElementType.from_suffix("b") is ElementType.B
        assert ElementType.from_suffix("w").nbytes == 4
        assert ElementType.from_bytes(2) is ElementType.H
        with pytest.raises(ValueError):
            ElementType.from_suffix("q")
        with pytest.raises(ValueError):
            ElementType.from_bytes(3)

    def test_subword_packing(self):
        assert ElementType.B.elems_per_word == 4
        assert ElementType.H.elems_per_word == 2
        assert ElementType.W.elems_per_word == 1


class TestVrf:
    def test_views_share_storage(self):
        vpu = make_vpu()
        view8 = vpu.vrf.view(0, ElementType.B)
        view32 = vpu.vrf.view(0, ElementType.W)
        view8[:4] = [1, 0, 0, 0]
        assert view32[0] == 1

    def test_max_vl(self):
        vpu = make_vpu(line_bytes=256)
        assert vpu.vrf.max_vl(ElementType.B) == 256
        assert vpu.vrf.max_vl(ElementType.W) == 64

    def test_write_offset_and_overflow(self):
        vpu = make_vpu()
        vpu.vrf.write(1, np.array([5, 6], dtype=np.int32), offset=2)
        assert vpu.vrf.view(1, ElementType.W)[2] == 5
        with pytest.raises(ValueError):
            vpu.vrf.write(1, np.zeros(65, dtype=np.int32))

    def test_bad_register_index(self):
        vpu = make_vpu(vregs=4)
        with pytest.raises(IndexError):
            vpu.vrf.view(4, ElementType.B)


class TestSemantics:
    def test_vclear(self):
        vpu = make_vpu()
        vpu.vrf.fill(0, 77, ElementType.W)
        vpu.execute(VectorOp(VectorOpcode.VCLEAR, ElementType.W, vd=0, vl=10))
        assert np.all(vpu.vrf.view(0, ElementType.W)[:10] == 0)
        assert vpu.vrf.view(0, ElementType.W)[10] == 77  # beyond vl untouched

    def test_vmacc_vs(self):
        vpu = make_vpu()
        vpu.vrf.write(1, np.arange(8, dtype=np.int32))
        vpu.execute(VectorOp(VectorOpcode.VCLEAR, ElementType.W, vd=0, vl=8))
        vpu.execute(VectorOp(VectorOpcode.VMACC_VS, ElementType.W, vd=0, vs1=1,
                             scalar=3, vl=8))
        assert np.array_equal(vpu.vrf.view(0, ElementType.W)[:8],
                              3 * np.arange(8, dtype=np.int32))

    def test_vmacc_wraps_in_element_width(self):
        vpu = make_vpu()
        vpu.vrf.write(1, np.array([100], dtype=np.int8))
        vpu.execute(VectorOp(VectorOpcode.VCLEAR, ElementType.B, vd=0, vl=1))
        vpu.execute(VectorOp(VectorOpcode.VMACC_VS, ElementType.B, vd=0, vs1=1,
                             scalar=2, vl=1))
        assert vpu.vrf.view(0, ElementType.B)[0] == np.int64(200).astype(np.int8)

    def test_offset_and_stride_gather(self):
        vpu = make_vpu()
        vpu.vrf.write(1, np.arange(16, dtype=np.int32))
        vpu.execute(VectorOp(VectorOpcode.VMV, ElementType.W, vd=0, vs1=1,
                             vl=4, offset=1, stride=3))
        assert list(vpu.vrf.view(0, ElementType.W)[:4]) == [1, 4, 7, 10]

    def test_vmax_vv_accumulates_into_vd(self):
        vpu = make_vpu()
        vpu.vrf.write(0, np.array([5, -2, 0, 9], dtype=np.int32))
        vpu.vrf.write(1, np.array([3, 4, -1, 20], dtype=np.int32))
        vpu.execute(VectorOp(VectorOpcode.VMAX_VV, ElementType.W, vd=0, vs1=1, vl=4))
        assert list(vpu.vrf.view(0, ElementType.W)[:4]) == [5, 4, 0, 20]

    def test_vmax_vmin_vs(self):
        vpu = make_vpu()
        vpu.vrf.write(1, np.array([-3, 2], dtype=np.int16))
        vpu.execute(VectorOp(VectorOpcode.VMAX_VS, ElementType.H, vd=0, vs1=1,
                             scalar=0, vl=2))
        assert list(vpu.vrf.view(0, ElementType.H)[:2]) == [0, 2]
        vpu.execute(VectorOp(VectorOpcode.VMIN_VS, ElementType.H, vd=2, vs1=1,
                             scalar=0, vl=2))
        assert list(vpu.vrf.view(2, ElementType.H)[:2]) == [-3, 0]

    def test_vsra(self):
        vpu = make_vpu()
        vpu.vrf.write(1, np.array([-8, 8], dtype=np.int32))
        vpu.execute(VectorOp(VectorOpcode.VSRA_VS, ElementType.W, vd=0, vs1=1,
                             scalar=2, vl=2))
        assert list(vpu.vrf.view(0, ElementType.W)[:2]) == [-2, 2]

    def test_vredsum(self):
        vpu = make_vpu()
        vpu.vrf.write(1, np.arange(10, dtype=np.int32))
        vpu.execute(VectorOp(VectorOpcode.VREDSUM, ElementType.W, vd=0, vs1=1, vl=10))
        assert vpu.vrf.view(0, ElementType.W)[0] == 45

    def test_vadd_vv(self):
        vpu = make_vpu()
        vpu.vrf.write(1, np.array([1, 2], dtype=np.int32))
        vpu.vrf.write(2, np.array([10, 20], dtype=np.int32))
        vpu.execute(VectorOp(VectorOpcode.VADD_VV, ElementType.W, vd=0, vs1=1,
                             vs2=2, vl=2))
        assert list(vpu.vrf.view(0, ElementType.W)[:2]) == [11, 22]

    def test_vd_offset(self):
        vpu = make_vpu()
        vpu.vrf.fill(0, 9, ElementType.W)
        vpu.vrf.write(1, np.array([1], dtype=np.int32))
        vpu.execute(VectorOp(VectorOpcode.VMV, ElementType.W, vd=0, vs1=1, vl=1,
                             vd_offset=5))
        view = vpu.vrf.view(0, ElementType.W)
        assert view[5] == 1 and view[4] == 9

    def test_source_overflow_rejected(self):
        vpu = make_vpu(line_bytes=64)
        with pytest.raises(ValueError):
            vpu.execute(VectorOp(VectorOpcode.VMV, ElementType.W, vd=0, vs1=1,
                                 vl=16, offset=8))

    @given(st.lists(st.integers(-128, 127), min_size=1, max_size=32),
           st.integers(-8, 8))
    @settings(max_examples=30, deadline=None)
    def test_vmacc_matches_numpy(self, values, scalar):
        vpu = make_vpu()
        data = np.array(values, dtype=np.int8)
        vpu.vrf.write(1, data)
        vpu.execute(VectorOp(VectorOpcode.VCLEAR, ElementType.B, vd=0, vl=len(values)))
        vpu.execute(VectorOp(VectorOpcode.VMACC_VS, ElementType.B, vd=0, vs1=1,
                             scalar=scalar, vl=len(values)))
        expected = (data.astype(np.int64) * scalar).astype(np.int8)
        assert np.array_equal(vpu.vrf.view(0, ElementType.B)[: len(values)], expected)


class TestTiming:
    def test_contiguous_subword_throughput(self):
        vpu = make_vpu(lanes=4)
        op = VectorOp(VectorOpcode.VMACC_VS, ElementType.B, vd=0, vs1=1, vl=64)
        # 64 int8 / (4 lanes * 4 per lane) = 4 cycles + startup
        assert vpu.op_cycles(op) == Vpu.STARTUP_CYCLES + 4

    def test_int32_throughput(self):
        vpu = make_vpu(lanes=4)
        op = VectorOp(VectorOpcode.VMACC_VS, ElementType.W, vd=0, vs1=1, vl=64)
        assert vpu.op_cycles(op) == Vpu.STARTUP_CYCLES + 16

    def test_strided_defeats_packing(self):
        vpu = make_vpu(lanes=4)
        contiguous = VectorOp(VectorOpcode.VMV, ElementType.B, vd=0, vs1=1, vl=32)
        strided = VectorOp(VectorOpcode.VMV, ElementType.B, vd=0, vs1=1, vl=32, stride=2)
        assert vpu.op_cycles(strided) > vpu.op_cycles(contiguous)

    def test_more_lanes_faster(self):
        op = VectorOp(VectorOpcode.VMACC_VS, ElementType.W, vd=0, vs1=1, vl=60)
        assert make_vpu(lanes=8).op_cycles(op) < make_vpu(lanes=2).op_cycles(op)

    def test_empty_op_costs_startup(self):
        vpu = make_vpu()
        assert vpu.op_cycles(VectorOp(VectorOpcode.VCLEAR, ElementType.W, vd=0, vl=0)) \
            == Vpu.STARTUP_CYCLES


class TestDispatcher:
    def make(self, issue=10):
        ct = CacheTable(2, 4, 256)
        vpus = [Vpu(i, VectorRegisterFile(ct.vpu_lines(i)), lanes=4) for i in range(2)]
        return Dispatcher(vpus, issue_cycles=issue, stats=StatsRegistry())

    def test_claim_release_cycle(self):
        dispatcher = self.make()
        dispatcher.claim(0, kernel_id=1)
        assert dispatcher.owner(0) == 1
        assert dispatcher.free_vpus() == [1]
        with pytest.raises(RuntimeError):
            dispatcher.claim(0, kernel_id=2)
        dispatcher.release(0)
        assert dispatcher.free_vpus() == [0, 1]

    def test_dispatch_cost_is_pipelined_max(self):
        dispatcher = self.make(issue=10)
        short = VectorOp(VectorOpcode.VCLEAR, ElementType.W, vd=0, vl=4)
        long = VectorOp(VectorOpcode.VMACC_VS, ElementType.W, vd=0, vs1=1, vl=64)
        assert dispatcher.dispatch(0, short) == 10  # issue-bound
        vpu_cycles = dispatcher.vpu(0).op_cycles(long)
        assert vpu_cycles > 10
        assert dispatcher.dispatch(0, long) == vpu_cycles  # compute-bound

    def test_issue_bound_counter(self):
        dispatcher = self.make(issue=100)
        dispatcher.dispatch(0, VectorOp(VectorOpcode.VCLEAR, ElementType.W, vd=0, vl=4))
        assert dispatcher.stats.value("dispatch.issue_bound") == 1


class TestRedsumWrapBoundaries:
    """VREDSUM wraps its int64 total through the element dtype (the old
    ``& -1`` int64 mask was a no-op; the cast does the wrapping)."""

    @pytest.mark.parametrize(
        "etype,values,expected",
        [
            # int8: 100 + 100 = 200 -> wraps to -56
            (ElementType.B, [100, 100], -56),
            # int8: exactly the negative boundary
            (ElementType.B, [-128, -128], 0),
            # int16: 30000 + 30000 = 60000 -> wraps to -5536
            (ElementType.H, [30000, 30000], -5536),
            # int16: one past the positive boundary
            (ElementType.H, [32767, 1], -32768),
            # int32: 2**31 total wraps to the negative boundary
            (ElementType.W, [2**30, 2**30], -(2**31)),
            # int32: stays representable, no wrap
            (ElementType.W, [2**30, 2**30 - 1], 2**31 - 1),
        ],
    )
    def test_wrap_at_width_boundary(self, etype, values, expected):
        vpu = make_vpu()
        vpu.vrf.write(0, np.array(values, dtype=etype.np_dtype))
        vpu.execute(
            VectorOp(VectorOpcode.VREDSUM, etype, vd=1, vs1=0, vl=len(values))
        )
        assert int(vpu.vrf.view(1, etype)[0]) == expected

    def test_negative_total_wraps(self):
        vpu = make_vpu()
        vpu.vrf.write(0, np.array([-100, -100, -100], dtype=np.int8))
        vpu.execute(VectorOp(VectorOpcode.VREDSUM, ElementType.B, vd=1, vs1=0, vl=3))
        # -300 mod 256 -> -44
        assert int(vpu.vrf.view(1, ElementType.B)[0]) == -44


class TestStridedGatherView:
    """The strided source path uses a slice view (no per-op index-array
    allocation) with an arithmetic bounds check."""

    def test_strided_gather_matches_manual_indexing(self):
        vpu = make_vpu()
        data = np.arange(64, dtype=np.int16)
        vpu.vrf.write(0, data)
        vpu.execute(
            VectorOp(VectorOpcode.VMV, ElementType.H, vd=1, vs1=0, vl=10,
                     offset=3, stride=5)
        )
        assert np.array_equal(
            vpu.vrf.view(1, ElementType.H)[:10], data[3 : 3 + 5 * 10 : 5]
        )

    def test_strided_bounds_check_exact_fit(self):
        vpu = make_vpu(line_bytes=64)  # 32 int16 elements per register
        vpu.vrf.write(0, np.arange(32, dtype=np.int16))
        # last index = 1 + 10*3 = 31: legal
        vpu.execute(
            VectorOp(VectorOpcode.VMV, ElementType.H, vd=1, vs1=0, vl=11,
                     offset=1, stride=3)
        )
        # last index = 2 + 10*3 = 32: one past the end
        with pytest.raises(ValueError, match="overflows source register"):
            vpu.execute(
                VectorOp(VectorOpcode.VMV, ElementType.H, vd=1, vs1=0, vl=11,
                         offset=2, stride=3)
            )

    def test_strided_self_move_copies_before_writing(self):
        # vs1 == vd with overlapping strided/contiguous windows: the
        # source must be snapshotted before the destination is written
        vpu = make_vpu()
        data = np.arange(16, dtype=np.int16)
        vpu.vrf.write(0, data)
        vpu.execute(
            VectorOp(VectorOpcode.VMV, ElementType.H, vd=0, vs1=0, vl=5,
                     offset=1, stride=2)
        )
        assert np.array_equal(
            vpu.vrf.view(0, ElementType.H)[:5], data[1:11:2]
        )

    def test_strided_macc_still_exact(self):
        vpu = make_vpu()
        src = np.arange(20, dtype=np.int32)
        acc = np.ones(6, dtype=np.int32)
        vpu.vrf.write(0, src)
        vpu.vrf.write(1, acc)
        vpu.execute(
            VectorOp(VectorOpcode.VMACC_VS, ElementType.W, vd=1, vs1=0, vl=6,
                     scalar=7, offset=2, stride=3)
        )
        assert np.array_equal(
            vpu.vrf.view(1, ElementType.W)[:6], acc + 7 * src[2 : 2 + 3 * 6 : 3]
        )
