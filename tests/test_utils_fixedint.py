"""Unit and property tests for RV32 fixed-width arithmetic helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitops import to_signed
from repro.utils.fixedint import (
    div_signed,
    div_unsigned,
    mulh_signed,
    mulh_signed_unsigned,
    mulh_unsigned,
    rem_signed,
    rem_unsigned,
    sat,
    wrap,
    wrap32,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestWrap:
    def test_wrap32(self):
        assert wrap32(1 << 32) == 0
        assert wrap32(-1) == 0xFFFFFFFF

    @pytest.mark.parametrize("width", [8, 16, 32, 64, 5])
    def test_wrap_widths(self, width):
        assert wrap(1 << width, width) == 0
        assert wrap((1 << width) - 1, width) == (1 << width) - 1


class TestSaturate:
    def test_signed(self):
        assert sat(200, 8) == 127
        assert sat(-200, 8) == -128
        assert sat(5, 8) == 5

    def test_unsigned(self):
        assert sat(300, 8, signed=False) == 255
        assert sat(-1, 8, signed=False) == 0

    @given(st.integers(), st.sampled_from([8, 16, 32]))
    def test_idempotent(self, value, width):
        once = sat(value, width)
        assert sat(once, width) == once


class TestMulh:
    @given(u32, u32)
    def test_mulh_signed_matches_wide_multiply(self, a, b):
        expected = wrap32((to_signed(a) * to_signed(b)) >> 32)
        assert mulh_signed(a, b) == expected

    @given(u32, u32)
    def test_mulh_unsigned_matches_wide_multiply(self, a, b):
        assert mulh_unsigned(a, b) == wrap32((a * b) >> 32)

    @given(u32, u32)
    def test_mulhsu_matches_wide_multiply(self, a, b):
        assert mulh_signed_unsigned(a, b) == wrap32((to_signed(a) * b) >> 32)


class TestDivision:
    def test_div_by_zero_spec_values(self):
        assert div_signed(42, 0) == 0xFFFFFFFF
        assert div_unsigned(42, 0) == 0xFFFFFFFF
        assert rem_signed(42, 0) == 42
        assert rem_unsigned(42, 0) == 42

    def test_signed_overflow(self):
        int_min = 0x80000000
        assert div_signed(int_min, wrap32(-1)) == int_min
        assert rem_signed(int_min, wrap32(-1)) == 0

    def test_rounds_toward_zero(self):
        assert to_signed(div_signed(wrap32(-7), 2)) == -3
        assert to_signed(rem_signed(wrap32(-7), 2)) == -1

    @given(u32, u32.filter(lambda v: v != 0))
    def test_signed_div_rem_identity(self, a, b):
        # a == q*b + r (mod 2^32), with |r| < |b| and sign(r) == sign(a)
        q = to_signed(div_signed(a, b))
        r = to_signed(rem_signed(a, b))
        if not (to_signed(a) == -(1 << 31) and to_signed(b) == -1):
            assert wrap32(q * to_signed(b) + r) == a
            assert abs(r) < abs(to_signed(b))

    @given(u32, u32.filter(lambda v: v != 0))
    def test_unsigned_div_rem_identity(self, a, b):
        q, r = div_unsigned(a, b), rem_unsigned(a, b)
        assert q * b + r == a
        assert r < b
