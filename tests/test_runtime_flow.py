"""Runtime-flow tests: bridge handshake, decoder, allocator, prefetch."""

import numpy as np
import pytest

from repro.cache.address_table import OperandKind
from repro.core.config import ArcaneConfig
from repro.core.system import ArcaneSystem
from repro.isa.xmnmc import FUNC5_XMR, OffloadRequest, pack_pair
from repro.runtime.matrix import MatrixBinding
from repro.vpu.visa import ElementType
from repro.xbridge.bridge import OffloadOutcome

CFG = ArcaneConfig(n_vpus=2, lanes=4, line_bytes=256, vpu_kib=4, main_memory_kib=512)


def xmr_request(md, address, rows, cols, suffix="w", instr_id=1):
    return OffloadRequest(
        func5=FUNC5_XMR, size_suffix=suffix,
        rs1_value=address,
        rs2_value=pack_pair(cols, md),
        rs3_value=pack_pair(cols, rows),
        instr_id=instr_id,
    )


class TestBridge:
    def test_xmr_accepted(self):
        system = ArcaneSystem(CFG)
        bridge = system.llc.bridge
        outcome = system.sim.run_process(bridge.offload(xmr_request(0, 0x10000, 4, 4)))
        assert outcome is OffloadOutcome.ACCEPTED
        assert system.stats.value("bridge.accepted") == 1

    def test_unknown_kernel_killed(self):
        system = ArcaneSystem(CFG)
        request = OffloadRequest(func5=29, size_suffix="w",
                                 rs1_value=0, rs2_value=0, rs3_value=0)
        outcome = system.sim.run_process(system.llc.bridge.offload(request))
        assert outcome is OffloadOutcome.KILLED
        assert system.stats.value("decoder.rejected") == 1

    def test_single_buffered_contention(self):
        """Two simultaneous offloads serialize through the bridge."""
        system = ArcaneSystem(CFG)
        bridge = system.llc.bridge
        order = []

        def host(idx):
            outcome = yield from bridge.offload(
                xmr_request(idx, 0x10000 + idx * 0x1000, 2, 2, instr_id=idx + 1)
            )
            order.append((idx, system.sim.now))
            return outcome

        system.sim.process(host(0))
        system.sim.process(host(1))
        system.sim.run()
        assert len(order) == 2
        assert order[0][1] < order[1][1]  # strictly serialized
        assert system.stats.value("bridge.contended") >= 1

    def test_host_stall_is_decode_bounded(self):
        """The offload handshake cost is decode latency, not kernel latency."""
        system = ArcaneSystem(CFG)
        start = system.sim.now
        system.sim.run_process(system.llc.bridge.offload(xmr_request(0, 0x10000, 4, 4)))
        handshake = system.sim.now - start
        costs = system.llc.runtime.decoder.costs
        expected = (system.llc.bridge.costs.sample + system.llc.bridge.costs.respond
                    + costs.interrupt_entry + costs.xmr_bind)
        assert handshake == expected


class TestDecoderEffects:
    def test_xmr_binds_matrix_map(self):
        system = ArcaneSystem(CFG)
        system.sim.run_process(system.llc.bridge.offload(xmr_request(3, 0x12000, 5, 6)))
        binding = system.llc.runtime.matrix_map.resolve(3)
        assert binding.address == 0x12000
        assert (binding.rows, binding.cols) == (5, 6)

    def test_kernel_decode_registers_at_entries(self, rng):
        system = ArcaneSystem(CFG)
        x = system.place_matrix(rng.integers(-4, 4, (4, 8)).astype(np.int32))
        out = system.alloc_matrix((4, 8), np.int32)

        captured = {}
        original_execute = system.llc.runtime.scheduler.execute

        def capture_execute(kernel):
            # snapshot the AT exactly when the kernel starts executing
            captured["busy"] = [
                (entry.kind, entry.start) for entry in system.llc.address_table.busy_entries()
            ]
            return original_execute(kernel)

        system.llc.runtime.scheduler.execute = capture_execute
        with system.program() as prog:
            prog.xmr(0, x).xmr(1, out)
            prog.leaky_relu(dest=1, src=0, alpha=0)
        kinds = {kind for kind, _ in captured["busy"]}
        assert OperandKind.SOURCE in kinds and OperandKind.DEST in kinds
        # released after completion
        assert system.llc.address_table.busy_entries() == []

    def test_preamble_cycles_attributed(self, rng):
        system = ArcaneSystem(CFG)
        x = system.place_matrix(rng.integers(-4, 4, (4, 8)).astype(np.int32))
        out = system.alloc_matrix((4, 8), np.int32)
        with system.program() as prog:
            prog.xmr(0, x).xmr(1, out)
            prog.leaky_relu(dest=1, src=0, alpha=0)
        breakdown = next(iter(system.last_report.per_kernel.values()))
        costs = system.llc.runtime.decoder.costs
        minimum = 2 * (costs.interrupt_entry + costs.xmr_bind) + costs.kernel_preamble
        assert breakdown.cycles["preamble"] >= minimum


class TestAllocator:
    def make(self):
        system = ArcaneSystem(CFG)
        return system, system.llc.runtime.allocator

    def test_claim_release_freelist(self):
        system, allocator = self.make()
        total = CFG.vregs_per_vpu
        window = allocator.claim(0, 4)
        assert allocator.free_regs(0) == total - 4
        allocator.release(window)
        assert allocator.free_regs(0) == total

    def test_claim_overflow(self):
        system, allocator = self.make()
        with pytest.raises(RuntimeError, match="free vregs"):
            allocator.claim(0, CFG.vregs_per_vpu + 1)

    def test_claimed_lines_marked_compute(self):
        system, allocator = self.make()
        window = allocator.claim(1, 2)
        lines = system.llc.cache_table.vpu_lines(1)
        assert all(lines[reg].is_compute for reg in window.vregs)
        allocator.release(window)
        assert not any(line.is_compute for line in lines)

    def test_claim_evicts_dirty_line_to_memory(self, rng):
        system, allocator = self.make()
        # dirty a cached line inside VPU 0's slice via a host write
        address = 0x20000
        system.sim.run_process(system.llc.controller.host_write(address, 77, 4))
        line = system.llc.cache_table.lookup(address)
        assert line is not None and line.dirty
        # claim every register of the VPU owning that line
        vpu_index = line.index // CFG.vregs_per_vpu
        window = allocator.claim(vpu_index, CFG.vregs_per_vpu)
        assert system.memory.read_u32(address) == 77  # flushed before claiming

    def test_load_rows_functional(self, rng):
        system, allocator = self.make()
        data = rng.integers(-9, 9, (4, 16)).astype(np.int32)
        handle = system.place_matrix(data)
        binding = MatrixBinding(handle.address, 4, 16, 16, ElementType.W)
        window = allocator.claim(0, 4)
        system.sim.run_process(allocator.load_rows(window, binding, 0, 4))
        vpu = system.llc.vpus[0]
        for row in range(4):
            loaded = vpu.vrf.view(window[row], ElementType.W)[:16]
            assert np.array_equal(loaded, data[row])

    def test_store_rows_lands_in_cache_dirty(self, rng):
        system, allocator = self.make()
        out = system.alloc_matrix((2, 16), np.int32)
        binding = MatrixBinding(out.address, 2, 16, 16, ElementType.W)
        window = allocator.claim(0, 2)
        vpu = system.llc.vpus[0]
        vpu.vrf.write(window[0], np.arange(16, dtype=np.int32))
        vpu.vrf.write(window[1], np.arange(16, 32, dtype=np.int32))
        system.sim.run_process(allocator.store_rows(window, binding, 0, 2))
        line = system.llc.cache_table.lookup(out.address)
        assert line is not None and line.dirty  # fetch-on-write (III-A.4)
        assert np.array_equal(
            system.read_matrix(out), np.arange(32, dtype=np.int32).reshape(2, 16)
        )

    def test_lock_released_after_transfers(self):
        system, allocator = self.make()
        data = np.zeros((2, 8), dtype=np.int32)
        handle = system.place_matrix(data)
        binding = MatrixBinding(handle.address, 2, 8, 8, ElementType.W)
        window = allocator.claim(0, 2)
        system.sim.run_process(allocator.load_rows(window, binding, 0, 2))
        assert not system.llc.controller.locked

    def test_load_packed_rejects_oversize(self, rng):
        system, allocator = self.make()
        max_vl = system.llc.vpus[0].vrf.max_vl(ElementType.W)
        big = system.place_matrix(np.zeros((max_vl, 2), dtype=np.int32))
        binding = MatrixBinding(big.address, max_vl, 2, 2, ElementType.W)
        window = allocator.claim(0, 1)
        with pytest.raises(ValueError, match="does not fit"):
            system.sim.run_process(allocator.load_packed(window, binding))


class TestPrefetchOverlap:
    def test_prefetch_hides_dma_under_compute(self, rng):
        """With double buffering, only the *exposed* DMA wait is charged to
        the allocation phase, so its share stays small on a compute-heavy
        2-lane configuration even though the raw DMA volume is large."""
        from repro.eval.figures import measure_conv_layer

        point = measure_conv_layer(64, 3, dtype="int8", lanes=2)
        assert point.breakdown.fraction("allocation") < 0.15
        assert point.breakdown.cycles["compute"] > 5 * point.breakdown.cycles["allocation"]

    def test_sequential_loads_cost_more_than_overlapped(self, rng):
        """gemm (synchronous loads) shows a higher allocation share than
        conv2d (prefetched) for a comparable data volume."""
        system = ArcaneSystem(CFG)
        a = system.place_matrix(rng.integers(-4, 4, (8, 16)).astype(np.int32))
        b = system.place_matrix(rng.integers(-4, 4, (16, 16)).astype(np.int32))
        c = system.place_matrix(np.zeros((8, 16), dtype=np.int32))
        d = system.alloc_matrix((8, 16), np.int32)
        with system.program() as prog:
            prog.xmr(0, a).xmr(1, b).xmr(2, c).xmr(3, d)
            prog.gemm(dest=3, a=0, b=1, c=2, alpha=1, beta=0)
        gemm_alloc = next(iter(system.last_report.per_kernel.values())).fraction("allocation")
        assert gemm_alloc > 0.0
