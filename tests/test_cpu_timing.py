"""Cycle-timing model tests for the CV32E40X/PX pipelines."""

from repro.cpu.core import Cpu
from repro.cpu.timing import CV32E40PX_TIMING, CV32E40X_TIMING
from repro.isa.asm import assemble
from repro.mem.memory import MainMemory


def run(source: str, timing=CV32E40X_TIMING, wait_states: int = 0) -> Cpu:
    program = assemble(source)
    memory = MainMemory(64 * 1024)
    memory.write_block(0, bytes(program.data))
    cpu = Cpu(memory, timing=timing, memory_wait_states=wait_states)
    cpu.run()
    return cpu


def test_single_cycle_alu_chain():
    cpu = run("addi a0, zero, 1\naddi a0, a0, 1\naddi a0, a0, 1\nebreak")
    # 3 ALU ops + ebreak(raises before charging) -> 3 cycles
    assert cpu.cycles == 3


def test_taken_branch_penalty():
    not_taken = run("li a0, 1\nbeqz a0, skip\nskip:\nebreak")
    taken = run("li a0, 0\nbeqz a0, skip\nnop\nskip:\nebreak")
    # same retired instruction count on the branch path, +2 flush cycles
    assert taken.cycles - not_taken.cycles == 2


def test_jump_penalty():
    jump = run("j skip\nnop\nskip:\nebreak")
    straight = run("nop\nebreak")
    assert jump.cycles - straight.cycles == 1


def test_mulh_slower_than_mul():
    mul = run("li a0, 3\nli a1, 4\nmul a2, a0, a1\nebreak")
    mulh = run("li a0, 3\nli a1, 4\nmulh a2, a0, a1\nebreak")
    assert mulh.cycles - mul.cycles == 4  # 5-cycle mulh vs 1-cycle mul


def test_divider_is_iterative():
    div = run("li a0, 100\nli a1, 3\ndiv a2, a0, a1\nebreak")
    mul = run("li a0, 100\nli a1, 3\nmul a2, a0, a1\nebreak")
    assert div.cycles > mul.cycles + 10


def test_memory_wait_states_charged():
    source = "li a0, 0x100\nlw a1, 0(a0)\nsw a1, 4(a0)\nebreak"
    fast = run(source, wait_states=0)
    slow = run(source, wait_states=3)
    assert slow.cycles - fast.cycles == 6  # 3 per access, 2 accesses


def test_instret_counts_instructions_not_cycles():
    cpu = run("li a0, 9\nli a1, 3\ndiv a2, a0, a1\nebreak")
    assert cpu.instret == 3
    assert cpu.cycles > cpu.instret


def test_px_timing_matches_base_for_shared_ops():
    base = run("li a0, 1\nli a1, 2\nadd a2, a0, a1\nebreak", CV32E40X_TIMING)
    px = run("li a0, 1\nli a1, 2\nadd a2, a0, a1\nebreak", CV32E40PX_TIMING)
    assert base.cycles == px.cycles


def test_simd_is_single_cycle():
    cpu = run("li a0, 1\nli a1, 2\npv.add.b a2, a0, a1\nebreak", CV32E40PX_TIMING)
    plain = run("li a0, 1\nli a1, 2\nadd a2, a0, a1\nebreak", CV32E40PX_TIMING)
    assert cpu.cycles == plain.cycles
