"""Legacy setup shim.

The evaluation environment is offline and has no ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build. This shim
lets ``pip install -e . --no-build-isolation`` fall back to
``setup.py develop``, which needs only setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "ARCANE: Adaptive RISC-V Cache Architecture for Near-memory "
        "Extensions - functional/cycle reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
